//! The DC-tree proper: construction, record-at-a-time insertion with
//! hierarchy splits and supernodes, measure-materialized range queries, and
//! deletion.

use std::collections::HashMap;

use dc_common::{
    AggregateOp, DcError, DcResult, DimensionId, Measure, MeasureSummary, RecordId, ValueId,
};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;
use dc_storage::{IoStats, IoTracker};

use crate::config::DcTreeConfig;
use crate::node::{Arena, DirEntry, Node, NodeId, NodeKind, StoredRecord};
use crate::query::PreparedRange;
use crate::split::{hierarchy_split, SplitOutcome};

/// Internal operation counters, useful for performance diagnosis and the
/// benchmark harness. All counters are cumulative since construction.
#[derive(Clone, Copy, Default, Debug)]
pub struct TreeMetrics {
    /// Node splits that succeeded.
    pub splits: u64,
    /// Split attempts that failed in every dimension (→ supernode growth or
    /// forced split).
    pub failed_splits: u64,
    /// Supernode block-growth events.
    pub supernode_growths: u64,
    /// Wall time spent inside the split machinery, in nanoseconds.
    pub split_nanos: u64,
    /// Range-query directory entries answered from the materialized
    /// summary (Fig. 7's contained-entry shortcut).
    pub shortcut_hits: u64,
    /// Range-query directory entries that had to be descended.
    pub descents: u64,
}

/// Interior-mutable query counters (queries take `&self`).
#[derive(Debug, Default)]
struct QueryCounters {
    shortcut_hits: std::sync::atomic::AtomicU64,
    descents: std::sync::atomic::AtomicU64,
}

impl Clone for QueryCounters {
    fn clone(&self) -> Self {
        use std::sync::atomic::Ordering::Relaxed;
        let c = QueryCounters::default();
        c.shortcut_hits
            .store(self.shortcut_hits.load(Relaxed), Relaxed);
        c.descents.store(self.descents.load(Relaxed), Relaxed);
        c
    }
}

/// The DC-tree: a fully dynamic, MDS-based index over a data cube with
/// materialized measures in every directory entry.
///
/// See the [crate-level documentation](crate) for an overview and a usage
/// example.
#[derive(Clone, Debug)]
pub struct DcTree {
    schema: CubeSchema,
    config: DcTreeConfig,
    pub(crate) arena: Arena,
    pub(crate) root: NodeId,
    io: IoTracker,
    next_record_id: u64,
    len: u64,
    metrics: TreeMetrics,
    query_counters: QueryCounters,
}

impl DcTree {
    /// Creates an empty DC-tree over `schema`. The root starts as a data
    /// node with the MDS `(ALL, …, ALL)` — "the relevant level is
    /// initialized to the top level for each dimension" (§3.2).
    pub fn new(schema: CubeSchema, config: DcTreeConfig) -> Self {
        config.validate();
        let mut arena = Arena::new();
        let root = arena.alloc(Node::new_data(Mds::all(&schema)));
        DcTree {
            schema,
            config,
            arena,
            root,
            io: IoTracker::new(),
            next_record_id: 0,
            len: 0,
            metrics: TreeMetrics::default(),
            query_counters: QueryCounters::default(),
        }
    }

    /// Rebuilds a tree from persisted parts (the load path of
    /// [`DcTree::from_bytes`](crate::persist)).
    pub(crate) fn from_parts(
        schema: CubeSchema,
        config: DcTreeConfig,
        arena: Arena,
        root: NodeId,
        next_record_id: u64,
        len: u64,
    ) -> Self {
        config.validate();
        DcTree {
            schema,
            config,
            arena,
            root,
            io: IoTracker::new(),
            next_record_id,
            len,
            metrics: TreeMetrics::default(),
            query_counters: QueryCounters::default(),
        }
    }

    /// The record-id counter, exposed for the persistence codec.
    pub(crate) fn next_record_id_for_persist(&self) -> u64 {
        self.next_record_id
    }

    /// The cube schema (grows as `insert_raw` interns new attribute values).
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> &DcTreeConfig {
        &self.config
    }

    /// Number of records stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` iff no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live nodes (directory + data).
    pub fn num_nodes(&self) -> usize {
        self.arena.len()
    }

    /// Height of the tree: number of node levels (1 for a lone data node).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        while let NodeKind::Dir(entries) = &self.arena.get(id).kind {
            h += 1;
            id = entries[0].child;
        }
        h
    }

    /// The materialized aggregate over **all** records — read from the root
    /// without touching anything else.
    pub fn total_summary(&self) -> MeasureSummary {
        self.arena.get(self.root).summary
    }

    /// Logical page-I/O counters charged so far.
    pub fn io_stats(&self) -> IoStats {
        self.io.stats()
    }

    /// Internal operation counters (splits, supernode growth, split time,
    /// query shortcut hits).
    pub fn metrics(&self) -> TreeMetrics {
        use std::sync::atomic::Ordering::Relaxed;
        let mut m = self.metrics;
        m.shortcut_hits = self.query_counters.shortcut_hits.load(Relaxed);
        m.descents = self.query_counters.descents.load(Relaxed);
        m
    }

    /// Resets the I/O counters.
    pub fn reset_io(&self) {
        self.io.reset();
    }

    /// Starts recording an access trace of the blocks queries touch; end
    /// with [`Self::end_trace`] and replay it through
    /// [`dc_storage::CacheSim`] to obtain physical reads under a memory
    /// budget (the paper's resource normalization, §5.3).
    pub fn begin_trace(&self) {
        self.io.begin_trace();
    }

    /// Stops recording and returns the trace of synthetic block ids.
    pub fn end_trace(&self) -> Vec<u64> {
        self.io.end_trace()
    }

    // ------------------------------------------------------------------
    // Insertion (§4.1)
    // ------------------------------------------------------------------

    /// Inserts a raw record: one top→leaf attribute path per dimension plus
    /// the measure. New attribute values are interned into the concept
    /// hierarchies on the fly — the fully dynamic path of the paper.
    pub fn insert_raw<S: AsRef<str>>(
        &mut self,
        paths: &[Vec<S>],
        measure: Measure,
    ) -> DcResult<RecordId> {
        let record = self.schema.intern_record(paths, measure)?;
        self.insert(record)
    }

    /// Interns one top→leaf attribute path per dimension into this tree's
    /// concept hierarchies **without inserting a record**, returning the
    /// leaf `ValueId`s. Because hierarchy IDs are assigned in insertion
    /// order per level, two trees that intern the same path sequence end up
    /// with identical IDs — the property sharded engines rely on to keep
    /// one consistent ID space across shard-local schemas (each shard
    /// replays the global intern log through this method before applying
    /// the records routed to it).
    pub fn intern_paths<S: AsRef<str>>(&mut self, paths: &[Vec<S>]) -> DcResult<Vec<ValueId>> {
        Ok(self.schema.intern_record(paths, 0)?.dims)
    }

    /// Inserts a pre-interned record (its leaf IDs must come from this
    /// tree's schema, e.g. via [`CubeSchema::intern_record`] on a clone the
    /// tree was constructed from).
    pub fn insert(&mut self, record: Record) -> DcResult<RecordId> {
        self.schema.validate_record(&record)?;
        let id = RecordId(self.next_record_id);
        self.next_record_id += 1;
        let stored = StoredRecord { id, record };
        self.insert_stored(stored)?;
        self.len += 1;
        Ok(id)
    }

    /// Inserts a batch of pre-interned records.
    ///
    /// The DC-tree's point is that it does *not* need bulk windows — but
    /// when a load arrives as a batch anyway there is no reason to pay the
    /// record-at-a-time price: an empty tree is built **bottom-up**
    /// ([`Self::bulk_load`]) and a populated tree takes the amortized
    /// batched descent ([`Self::insert_batch`]). Returns the assigned ids
    /// in the order of the *input* slice.
    pub fn bulk_insert(&mut self, records: Vec<Record>) -> DcResult<Vec<RecordId>> {
        if self.is_empty() {
            self.bulk_load(records)
        } else {
            self.insert_batch(records)
        }
    }

    /// Builds the tree **bottom-up** from a record set: sort along the
    /// hierarchy paths (dimension-major, coarse levels first), pack data
    /// nodes to the fill factor, then build each directory level upward
    /// with exact covers and exact materialized aggregates. No
    /// choose-subtree and no split machinery runs — the sorted order *is*
    /// the clustering the split algorithm works towards record-by-record.
    ///
    /// Requires an empty tree; on a populated tree this delegates to the
    /// amortized [`Self::insert_batch`] path. Returns the assigned ids in
    /// the order of the *input* slice.
    pub fn bulk_load(&mut self, records: Vec<Record>) -> DcResult<Vec<RecordId>> {
        if !self.is_empty() {
            return self.insert_batch(records);
        }
        if records.is_empty() {
            return Ok(Vec::new());
        }
        for r in &records {
            self.schema.validate_record(r)?;
        }
        let n = records.len();
        let mut keyed: Vec<(Vec<u32>, usize)> = records
            .iter()
            .enumerate()
            .map(|(i, r)| Ok((self.schema.flatten_record(r)?, i)))
            .collect::<DcResult<_>>()?;
        keyed.sort();
        let base = self.next_record_id;
        let ids: Vec<RecordId> = (0..n).map(|i| RecordId(base + i as u64)).collect();
        self.next_record_id += n as u64;
        self.len += n as u64;
        let mut slots: Vec<Option<Record>> = records.into_iter().map(Some).collect();
        let sorted: Vec<StoredRecord> = keyed
            .into_iter()
            .map(|(_, i)| StoredRecord {
                id: ids[i],
                record: slots[i].take().expect("each input index exactly once"),
            })
            .collect();
        self.build_from_sorted(sorted)?;
        Ok(ids)
    }

    /// Inserts a batch through a shared descent: records with identical
    /// leaf coordinates run choose-subtree and the MDS extension **once
    /// per directory level for the whole run**, data pages take the run in
    /// one append, and overflow splits are resolved once at the end of
    /// each run instead of per record.
    ///
    /// Runs are formed by *hashing* coordinates, not by sorting the batch:
    /// feeding the tree a hierarchy-sorted stream advances a single key
    /// frontier, and choose-subtree then stretches the frontier nodes'
    /// MDSs over everything the stream has passed — the classic
    /// sorted-insertion pathology, measured here as ~3× directory MDS
    /// bloat that taxes every later descent and query. Grouping keeps the
    /// arrival order's natural scatter while still deduplicating descents.
    ///
    /// Returns the assigned ids in the order of the *input* slice.
    pub fn insert_batch(&mut self, records: Vec<Record>) -> DcResult<Vec<RecordId>> {
        for r in &records {
            self.schema.validate_record(r)?;
        }
        let n = records.len();
        let base = self.next_record_id;
        let ids: Vec<RecordId> = (0..n).map(|i| RecordId(base + i as u64)).collect();
        self.next_record_id += n as u64;
        self.len += n as u64;
        let mut runs: Vec<Vec<StoredRecord>> = Vec::new();
        let mut by_dims: HashMap<Vec<ValueId>, usize> = HashMap::new();
        for (i, record) in records.into_iter().enumerate() {
            let slot = *by_dims.entry(record.dims.clone()).or_insert_with(|| {
                runs.push(Vec::new());
                runs.len() - 1
            });
            runs[slot].push(StoredRecord { id: ids[i], record });
        }
        for run in &runs {
            self.insert_run(run)?;
        }
        Ok(ids)
    }

    /// Packs hierarchy-sorted records into data nodes and builds the
    /// directory levels above them. Assumes the tree is structurally empty
    /// (`len` / `next_record_id` are maintained by the callers — `rebuild`
    /// preserves ids, `bulk_load` assigns fresh ones).
    fn build_from_sorted(&mut self, sorted: Vec<StoredRecord>) -> DcResult<()> {
        debug_assert!(self.arena.get(self.root).is_data());
        debug_assert!(self.arena.get(self.root).is_empty());
        self.arena.free(self.root);
        let d = self.schema.num_dims();
        // Upper MDSs are kept from degenerating into huge leaf-level value
        // lists by adapting any dimension set beyond this bound to coarser
        // hierarchy levels — the bottom-up analogue of the paper's relevant
        // level decreasing as splits descend the hierarchy.
        let max_set = self.config.data_capacity.max(self.config.dir_capacity);
        let mut level: Vec<NodeId> = Vec::new();
        let mut iter = sorted.into_iter().peekable();
        while iter.peek().is_some() {
            let chunk: Vec<StoredRecord> = iter.by_ref().take(self.config.data_capacity).collect();
            let mut dimvals: Vec<Vec<ValueId>> = vec![Vec::new(); d];
            let mut summary = MeasureSummary::empty();
            for r in &chunk {
                summary.add(r.record.measure);
                for (dim, &v) in r.record.dims.iter().enumerate() {
                    dimvals[dim].push(v);
                }
            }
            let mds = Mds::new(
                dimvals
                    .into_iter()
                    .map(|vals| dc_mds::DimSet::new(0, vals))
                    .collect(),
            );
            let mut node = Node::new_data(mds);
            node.summary = summary;
            *node.records_mut() = chunk;
            let nid = self.arena.alloc(node);
            self.io.write(self.arena.get(nid).blocks);
            level.push(nid);
        }
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(self.config.dir_capacity));
            for group in level.chunks(self.config.dir_capacity) {
                let entries: Vec<DirEntry> = group.iter().map(|&c| self.entry_for(c)).collect();
                let mut mds = entries[0].mds.clone();
                for e in &entries[1..] {
                    mds = mds.cover(&e.mds, &self.schema)?;
                }
                let mds = self.coarsen_mds(mds, max_set)?;
                let nid = self.arena.alloc(Node::new_dir(mds, entries));
                self.io.write(self.arena.get(nid).blocks);
                next.push(nid);
            }
            level = next;
        }
        self.root = level[0];
        Ok(())
    }

    /// Adapts any dimension set longer than `max_len` to coarser hierarchy
    /// levels until it fits (or tops out at ALL). Coverage only widens, so
    /// containment of everything below is preserved.
    fn coarsen_mds(&self, mut mds: Mds, max_len: usize) -> DcResult<Mds> {
        for (dim, h) in self.schema.dims().enumerate() {
            loop {
                let set = mds.dim(dim);
                if set.len() <= max_len || set.level() >= h.top_level() {
                    break;
                }
                *mds.dim_mut(dim) = set.adapt_to(h, set.level() + 1)?;
            }
        }
        Ok(mds)
    }

    /// Inserts one run of identical-coordinate records, growing the root as
    /// many times as the cascade of splits demands.
    fn insert_run(&mut self, run: &[StoredRecord]) -> DcResult<()> {
        let mut siblings = self.insert_run_rec(self.root, run)?;
        while !siblings.is_empty() {
            let mut entries = vec![self.entry_for(self.root)];
            for s in &siblings {
                entries.push(self.entry_for(*s));
            }
            let mut mds = entries[0].mds.clone();
            for e in entries.iter().skip(1) {
                mds = mds.cover(&e.mds, &self.schema)?;
            }
            let new_root = self.arena.alloc(Node::new_dir(mds, entries));
            self.io.write(self.arena.get(new_root).blocks);
            self.root = new_root;
            siblings = self.split_overflow(new_root)?;
        }
        Ok(())
    }

    /// Recursive batched insert: one choose-subtree, one MDS extension and
    /// one summary pass per level for the whole run. Returns every new
    /// sibling the overflow resolution produced at this level.
    fn insert_run_rec(&mut self, id: NodeId, run: &[StoredRecord]) -> DcResult<Vec<NodeId>> {
        self.io.read(self.arena.get(id).blocks);
        if self.arena.get(id).is_data() {
            let node = self.arena.get_mut(id);
            for r in run {
                node.summary.add(r.record.measure);
            }
            node.mds
                .extend_to_cover_record(&self.schema, &run[0].record)?;
            node.records_mut().extend_from_slice(run);
            self.io.write(self.arena.get(id).blocks);
            return self.split_overflow(id);
        }

        let choice = self.choose_subtree(id, &run[0].record)?;
        let child = {
            let node = self.arena.get_mut(id);
            for r in run {
                node.summary.add(r.record.measure);
            }
            node.mds
                .extend_to_cover_record(&self.schema, &run[0].record)?;
            let entry = &mut node.entries_mut()[choice];
            for r in run {
                entry.summary.add(r.record.measure);
            }
            entry
                .mds
                .extend_to_cover_record(&self.schema, &run[0].record)?;
            entry.child
        };
        self.io.write(self.arena.get(id).blocks);

        let new_children = self.insert_run_rec(child, run)?;
        if new_children.is_empty() {
            return Ok(Vec::new());
        }
        // The child split (possibly multi-way): refresh its entry and add
        // the new sons, then resolve this node's own overflow.
        let refreshed = self.entry_for(child);
        let new_entries: Vec<DirEntry> = new_children.iter().map(|&c| self.entry_for(c)).collect();
        let node = self.arena.get_mut(id);
        let entry = node
            .entries_mut()
            .iter_mut()
            .find(|e| e.child == child)
            .expect("split child must still be referenced");
        *entry = refreshed;
        node.entries_mut().extend(new_entries);
        self.io.write(self.arena.get(id).blocks);
        self.split_overflow(id)
    }

    /// Resolves an arbitrary overflow on `id` (a batched append can exceed
    /// capacity by more than one): split while the content exceeds
    /// `capacity × blocks`, letting failed splits grow the supernode as in
    /// the record-at-a-time path. Returns the new siblings.
    fn split_overflow(&mut self, id: NodeId) -> DcResult<Vec<NodeId>> {
        let mut siblings = Vec::new();
        let mut work = vec![id];
        while let Some(nid) = work.pop() {
            loop {
                let node = self.arena.get(nid);
                let cap = if node.is_data() {
                    self.config.data_capacity
                } else {
                    self.config.dir_capacity
                };
                if node.len() <= cap * node.blocks as usize {
                    break;
                }
                // `None` means the supernode grew a block; re-check.
                if let Some(sib) = self.split_node(nid)? {
                    siblings.push(sib);
                    work.push(sib);
                }
            }
        }
        Ok(siblings)
    }

    /// Core insertion, shared with delete's re-insertion path (does not
    /// touch `len` / `next_record_id`).
    fn insert_stored(&mut self, stored: StoredRecord) -> DcResult<()> {
        if let Some(new_sibling) = self.insert_rec(self.root, &stored)? {
            // Root split: grow the tree by one level.
            let e1 = self.entry_for(self.root);
            let e2 = self.entry_for(new_sibling);
            let mds = e1.mds.cover(&e2.mds, &self.schema)?;
            let new_root = self.arena.alloc(Node::new_dir(mds, vec![e1, e2]));
            self.io.write(self.arena.get(new_root).blocks);
            self.root = new_root;
        }
        Ok(())
    }

    fn entry_for(&self, child: NodeId) -> DirEntry {
        let node = self.arena.get(child);
        DirEntry {
            mds: node.mds.clone(),
            summary: node.summary,
            child,
        }
    }

    /// Recursive insert (Fig. 4). Returns the newly created sibling if this
    /// node was split.
    fn insert_rec(&mut self, id: NodeId, stored: &StoredRecord) -> DcResult<Option<NodeId>> {
        self.io.read(self.arena.get(id).blocks);
        if self.arena.get(id).is_data() {
            let node = self.arena.get_mut(id);
            node.summary.add(stored.record.measure);
            node.mds
                .extend_to_cover_record(&self.schema, &stored.record)?;
            node.records_mut().push(stored.clone());
            self.io.write(self.arena.get(id).blocks);
            let node = self.arena.get(id);
            if node.len() > self.config.data_capacity * node.blocks as usize {
                return self.split_node(id);
            }
            return Ok(None);
        }

        // Directory node: update measure, choose subtree, descend.
        let choice = self.choose_subtree(id, &stored.record)?;
        let child = {
            let node = self.arena.get_mut(id);
            node.summary.add(stored.record.measure);
            node.mds
                .extend_to_cover_record(&self.schema, &stored.record)?;
            let entry = &mut node.entries_mut()[choice];
            entry.summary.add(stored.record.measure);
            entry
                .mds
                .extend_to_cover_record(&self.schema, &stored.record)?;
            entry.child
        };
        self.io.write(self.arena.get(id).blocks);

        if let Some(new_sibling) = self.insert_rec(child, stored)? {
            // The child was split: refresh its entry and add the new son.
            let refreshed = self.entry_for(child);
            let new_entry = self.entry_for(new_sibling);
            let node = self.arena.get_mut(id);
            let entry = node
                .entries_mut()
                .iter_mut()
                .find(|e| e.child == child)
                .expect("split child must still be referenced");
            *entry = refreshed;
            node.entries_mut().push(new_entry);
            self.io.write(self.arena.get(id).blocks);
            let node = self.arena.get(id);
            if node.len() > self.config.dir_capacity * node.blocks as usize {
                return self.split_node(id);
            }
        }
        Ok(None)
    }

    /// Chooses the son to descend into: prefer entries already covering the
    /// record (smallest volume wins); otherwise minimize the **overlap**
    /// the insertion creates with sibling entries (the X-tree's
    /// choose-subtree criterion, which keeps sibling regions separable for
    /// later directory splits), then the volume enlargement, the volume,
    /// and the size.
    ///
    /// The overlap criterion uses a linear-time surrogate: inserting the
    /// record adds, per dimension, its ancestor on the entry's relevant
    /// level; each sibling already holding that value is a newly shared
    /// value, i.e. prospective overlap.
    fn choose_subtree(&self, id: NodeId, record: &Record) -> DcResult<usize> {
        let entries = self.arena.get(id).entries();
        debug_assert!(!entries.is_empty(), "directory node without entries");
        let mut best_covering: Option<(u128, usize, usize)> = None;
        for (i, e) in entries.iter().enumerate() {
            if e.mds.contains_record(&self.schema, record)? {
                let key = (e.mds.volume(), e.mds.size(), i);
                if best_covering.is_none_or(|b| key < b) {
                    best_covering = Some(key);
                }
            }
        }
        if let Some((_, _, i)) = best_covering {
            return Ok(i);
        }

        // Per (entry, dim): does the entry already hold the record's
        // ancestor on its relevant level? One pass, reused below.
        let d = self.schema.num_dims();
        let mut holds = vec![false; entries.len() * d];
        let mut holders_per_dim = vec![0usize; d];
        for (i, e) in entries.iter().enumerate() {
            for (dim, h) in self.schema.dims().enumerate() {
                let anc = h.ancestor_at(record.dims[dim], e.mds.dim(dim).level())?;
                if e.mds.dim(dim).contains_value(anc) {
                    holds[i * d + dim] = true;
                    holders_per_dim[dim] += 1;
                }
            }
        }

        let mut best: Option<(usize, u128, u128, usize, usize)> = None;
        for (i, e) in entries.iter().enumerate() {
            // Newly shared values this insertion would create: for every
            // dimension whose ancestor the entry lacks, all sibling entries
            // already holding it become overlap partners.
            let mut overlap_penalty = 0usize;
            for dim in 0..d {
                if !holds[i * d + dim] {
                    overlap_penalty += holders_per_dim[dim];
                }
            }
            let enlargement = e.mds.enlargement_for_record(&self.schema, record)?;
            let key = (
                overlap_penalty,
                enlargement,
                e.mds.volume(),
                e.mds.size(),
                i,
            );
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        Ok(best.expect("non-empty entries").4)
    }

    // ------------------------------------------------------------------
    // Split (§4.2)
    // ------------------------------------------------------------------

    /// Attempts to split node `id` (Fig. 5). On success the node keeps the
    /// first group and the returned sibling holds the second. On failure
    /// the node grows into (or extends) a supernode and `None` is returned —
    /// unless supernodes are disabled, in which case the best rejected
    /// grouping is forced.
    fn split_node(&mut self, id: NodeId) -> DcResult<Option<NodeId>> {
        let t0 = std::time::Instant::now();
        let result = self.split_node_inner(id);
        self.metrics.split_nanos += t0.elapsed().as_nanos() as u64;
        result
    }

    fn split_node_inner(&mut self, id: NodeId) -> DcResult<Option<NodeId>> {
        let (member_mds, children, node_levels, node_dim_lens): (
            Vec<Mds>,
            Option<Vec<NodeId>>,
            Vec<u8>,
            Vec<usize>,
        ) = {
            let node = self.arena.get(id);
            let (members, children) = match &node.kind {
                NodeKind::Dir(entries) => (
                    entries.iter().map(|e| e.mds.clone()).collect(),
                    Some(entries.iter().map(|e| e.child).collect()),
                ),
                NodeKind::Data(records) => (
                    records
                        .iter()
                        .map(|r| Mds::from_record(&r.record))
                        .collect(),
                    None,
                ),
            };
            let levels = node.mds.levels();
            let lens = (0..node.mds.num_dims())
                .map(|d| node.mds.dim(d).len())
                .collect();
            (members, children, levels, lens)
        };
        let num_members = member_mds.len();
        let min_group = self.config.min_group(num_members);

        // Candidate split dimensions, highest hierarchy level first (Fig. 5:
        // "the algorithm always selects the dimension with the highest
        // hierarchy level of the elements of the MDS").
        let mut dims: Vec<usize> = (0..node_levels.len()).collect();
        dims.sort_by_key(|&d| std::cmp::Reverse(node_levels[d]));

        // Lazy refinement can leave members coarser than the node MDS, so
        // the analysis alignment level per dimension is the coarsest of
        // (node level, member levels).
        let align_levels: Vec<u8> = (0..node_levels.len())
            .map(|dim| {
                member_mds
                    .iter()
                    .map(|m| m.dim(dim).level())
                    .max()
                    .unwrap_or(node_levels[dim])
                    .max(node_levels[dim])
            })
            .collect();

        let mut best_rejected: Option<(SplitOutcome, f64)> = None;
        for &d in &dims {
            // The relevant level the subgroups will use in the split
            // dimension. When the node's MDS holds a single value there
            // (e.g. ALL), it is decreased by one (§3.2) — and when the split
            // is rejected as unbalanced or too overlapping, we keep
            // descending the concept hierarchy: finer values give the
            // assignment more room to separate skewed distributions.
            // Members coarser than the target level are *refined* by
            // recomputing their extent from their subtree, so no member
            // pins the descent; their group's final cover is still taken
            // from the original (coarse) MDS, preserving coverage.
            let start = if node_dim_lens[d] < 2 && node_levels[d] > 0 {
                node_levels[d] - 1
            } else {
                node_levels[d]
            };
            for level in (0..=start).rev() {
                let mut target = align_levels.clone();
                target[d] = level;
                let mut analysis = Vec::with_capacity(num_members);
                let mut refinements: Vec<(usize, dc_mds::DimSet)> = Vec::new();
                for (i, m) in member_mds.iter().enumerate() {
                    let mut a = m.adapt_to_levels(&self.schema, &{
                        // Adapt non-split dims to the alignment levels;
                        // the split dim is handled separately below.
                        let mut t = target.clone();
                        t[d] = t[d].max(m.dim(d).level());
                        t
                    })?;
                    if m.dim(d).level() > level {
                        // Coarser than the target: refine from the subtree.
                        let refined = match &children {
                            Some(kids) => self.subtree_dimset_at(kids[i], d, level)?,
                            None => unreachable!("records sit on leaf level 0"),
                        };
                        *a.dim_mut(d) = refined.clone();
                        refinements.push((i, refined));
                    }
                    analysis.push(a);
                }
                let Some(outcome) = hierarchy_split(&self.schema, &analysis, d, min_group)? else {
                    break;
                };
                let ratio = outcome.overlap_ratio();
                // A split is accepted when its overlap is low enough and it
                // is either balanced (the X-tree rule) or **disjoint**: a
                // zero-overlap split never causes multi-path descent, so an
                // uneven but clean partition beats growing a supernode —
                // the skew is the data's, not the structure's.
                let balanced = outcome.min_group_len() >= min_group
                    || (ratio == 0.0 && outcome.min_group_len() >= 2);
                let low_overlap = ratio <= self.config.max_overlap;
                if balanced && low_overlap {
                    self.metrics.splits += 1;
                    // Commit the lazy refinement: entries analysed at the
                    // finer level keep it — both in this node's entries and
                    // in the referenced child's own MDS. Their extent at the
                    // finer level is exact (computed from the subtree), so
                    // record coverage is preserved while dead space shrinks.
                    for (i, refined) in refinements {
                        let child = children.as_ref().expect("refinement only on dir")[i];
                        *self.arena.get_mut(child).mds.dim_mut(d) = refined.clone();
                        let node = self.arena.get_mut(id);
                        *node.entries_mut()[i].mds.dim_mut(d) = refined;
                    }
                    return Ok(Some(self.apply_split(id, outcome)));
                }
                let better = match &best_rejected {
                    None => true,
                    Some((prev, prev_ratio)) => {
                        (outcome.min_group_len(), -ratio) > (prev.min_group_len(), -prev_ratio)
                    }
                };
                if better && outcome.min_group_len() >= 1 {
                    // Only splits needing no refinement may be forced later
                    // (the refinement is not committed for rejected levels).
                    if refinements.is_empty() {
                        best_rejected = Some((outcome, ratio));
                    }
                }
            }
        }

        // No acceptable split in any dimension.
        self.metrics.failed_splits += 1;
        let may_grow = self.config.allow_supernodes
            && self.arena.get(id).blocks < self.config.max_supernode_blocks;
        if may_grow {
            // Grow the supernode. Growth is geometric (¼ of the current
            // block count, at least one block): a node that keeps failing to
            // split retries on every overflow of `capacity × blocks`, and
            // each retry re-analyses the whole subtree — linear-by-one
            // growth would make a persistently unsplittable node cost
            // O(n²) over its lifetime.
            self.metrics.supernode_growths += 1;
            let node = self.arena.get_mut(id);
            node.blocks += (node.blocks / 4).max(1);
            self.io.write(self.arena.get(id).blocks);
            Ok(None)
        } else {
            // Supernodes disabled (ablation A2) or the supernode hit its
            // block bound: force the least-bad grouping; if every candidate
            // required uncommitted refinement, fall back to halving the
            // members in storage order.
            let outcome = match best_rejected {
                Some((outcome, _)) => outcome,
                None => {
                    let mid = num_members / 2;
                    let group1: Vec<usize> = (0..mid).collect();
                    let group2: Vec<usize> = (mid..num_members).collect();
                    let cover_of = |idx: &[usize]| -> DcResult<Mds> {
                        let mut cover: Option<Mds> = None;
                        for &i in idx {
                            cover = Some(match cover {
                                None => member_mds[i].clone(),
                                Some(c) => c.cover(&member_mds[i], &self.schema)?,
                            });
                        }
                        Ok(cover.expect("non-empty group"))
                    };
                    SplitOutcome {
                        cover1: cover_of(&group1)?,
                        cover2: cover_of(&group2)?,
                        group1,
                        group2,
                    }
                }
            };
            Ok(Some(self.apply_split(id, outcome)))
        }
    }

    /// Computes the extent of the subtree under `id` in dimension `d`,
    /// expressed on `level` — descending past entries whose stored MDS is
    /// coarser than `level`. Used by the split path to refine coarse
    /// members; never stored.
    fn subtree_dimset_at(&self, id: NodeId, d: usize, level: u8) -> DcResult<dc_mds::DimSet> {
        let node = self.arena.get(id);
        let h = self.schema.dims().nth(d).expect("dimension in schema");
        if node.mds.dim(d).level() <= level {
            return node.mds.dim(d).adapt_to(h, level);
        }
        match &node.kind {
            NodeKind::Data(records) => {
                let mut values = Vec::with_capacity(records.len());
                for r in records {
                    values.push(h.ancestor_at(r.record.dims[d], level)?);
                }
                values.sort_unstable();
                values.dedup();
                Ok(dc_mds::DimSet::new(level, values))
            }
            NodeKind::Dir(entries) => {
                let mut acc: Option<dc_mds::DimSet> = None;
                for e in entries {
                    let part = if e.mds.dim(d).level() <= level {
                        e.mds.dim(d).adapt_to(h, level)?
                    } else {
                        self.subtree_dimset_at(e.child, d, level)?
                    };
                    acc = Some(match acc {
                        None => part,
                        Some(mut a) => {
                            a.union_with(&part);
                            a
                        }
                    });
                }
                acc.ok_or_else(|| DcError::Corrupt("directory node without entries".into()))
            }
        }
    }

    /// Materializes a split outcome: the node keeps group 1, a fresh sibling
    /// receives group 2. Returns the sibling.
    fn apply_split(&mut self, id: NodeId, outcome: SplitOutcome) -> NodeId {
        let SplitOutcome {
            group1,
            group2,
            cover1,
            cover2,
        } = outcome;
        let old_kind =
            std::mem::replace(&mut self.arena.get_mut(id).kind, NodeKind::Data(Vec::new()));
        let mut sibling = match old_kind {
            NodeKind::Data(records) => {
                let (mut part1, mut part2) = (Vec::new(), Vec::new());
                partition_by_index(records, &group1, &group2, &mut part1, &mut part2);
                let summary1: MeasureSummary = part1.iter().map(|r| r.record.measure).collect();
                let summary2: MeasureSummary = part2.iter().map(|r| r.record.measure).collect();
                let node = self.arena.get_mut(id);
                node.kind = NodeKind::Data(part1);
                node.summary = summary1;
                node.mds = cover1;
                let mut sibling = Node::new_data(cover2);
                sibling.summary = summary2;
                *sibling.records_mut() = part2;
                sibling
            }
            NodeKind::Dir(entries) => {
                let (mut part1, mut part2) = (Vec::new(), Vec::new());
                partition_by_index(entries, &group1, &group2, &mut part1, &mut part2);
                let summary1 = part1.iter().fold(MeasureSummary::empty(), |mut a, e| {
                    a.merge(&e.summary);
                    a
                });
                let node = self.arena.get_mut(id);
                node.kind = NodeKind::Dir(part1);
                node.summary = summary1;
                node.mds = cover1;
                Node::new_dir(cover2, part2)
            }
        };
        // Supernodes shrink back to the fewest blocks that hold each part.
        let (data_cap, dir_cap) = (self.config.data_capacity, self.config.dir_capacity);
        let node = self.arena.get_mut(id);
        node.blocks = blocks_needed(node, data_cap, dir_cap);
        sibling.blocks = blocks_needed(&sibling, data_cap, dir_cap);
        self.io.write(self.arena.get(id).blocks);
        let sid = self.arena.alloc(sibling);
        self.io.write(self.arena.get(sid).blocks);
        sid
    }

    // ------------------------------------------------------------------
    // Range queries (Fig. 7)
    // ------------------------------------------------------------------

    /// Runs a range query and evaluates one aggregation operator over the
    /// selected records. The range is an MDS: per dimension, a set of
    /// attribute values on one hierarchy level; a record is selected iff
    /// each of its leaf values lies below one of the range's values.
    ///
    /// Returns `None` for `MIN`/`MAX`/`AVG` over an empty selection.
    pub fn range_query(&self, range: &Mds, op: AggregateOp) -> DcResult<Option<f64>> {
        Ok(self.range_summary(range)?.eval(op))
    }

    /// Runs a range query, returning the full mergeable summary.
    ///
    /// Directory entries whose MDS is fully contained in the range
    /// contribute their **materialized** summary without being descended
    /// into; partially overlapping entries are recursed (Fig. 7). With
    /// `use_materialized_aggregates` disabled the query always descends —
    /// the ablation isolating the benefit of materialization.
    pub fn range_summary(&self, range: &Mds) -> DcResult<MeasureSummary> {
        if range.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: range.num_dims(),
            });
        }
        let prepared = self.prepare_range(range)?;
        self.range_summary_prepared(&prepared)
    }

    /// Prepares `range` for repeated evaluation against this tree, honouring
    /// the tree's containment-mode configuration. Pair with
    /// [`Self::range_summary_prepared`] / [`Self::group_by_prepared`].
    pub fn prepare_range(&self, range: &Mds) -> DcResult<PreparedRange> {
        PreparedRange::with_mode(&self.schema, range, self.config.use_paper_fig7_containment)
    }

    /// Runs a range query from an already-[prepared](Self::prepare_range)
    /// range, skipping per-call preparation.
    ///
    /// The range may have been prepared against a *different* schema as long
    /// as that schema assigns the same `ValueId`s as this tree's (the
    /// sharded engine prepares once against its global catalog, of which
    /// every shard schema is a prefix) — the traversal only probes values
    /// this tree knows, and their bits are where the preparing schema put
    /// them. The steady-state traversal performs no heap allocation.
    pub fn range_summary_prepared(&self, prepared: &PreparedRange) -> DcResult<MeasureSummary> {
        if prepared.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: prepared.num_dims(),
            });
        }
        let mut acc = MeasureSummary::empty();
        self.query_rec(self.root, prepared, &mut acc)?;
        Ok(acc)
    }

    fn query_rec(
        &self,
        id: NodeId,
        range: &PreparedRange,
        acc: &mut MeasureSummary,
    ) -> DcResult<()> {
        let node = self.arena.get(id);
        self.io.read_keyed(id.0 as u64, node.blocks);
        match &node.kind {
            NodeKind::Data(records) => {
                for r in records {
                    if range.contains_record(&self.schema, &r.record)? {
                        acc.add(r.record.measure);
                    }
                }
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    if !range.overlaps(&self.schema, &e.mds)? {
                        continue;
                    }
                    if self.config.use_materialized_aggregates
                        && range.contains_entry(&self.schema, &e.mds)?
                    {
                        self.query_counters
                            .shortcut_hits
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        acc.merge(&e.summary);
                    } else {
                        self.query_counters
                            .descents
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        self.query_rec(e.child, range, acc)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Range **selection**: invokes `f` for every stored record inside the
    /// range. Aggregation queries are the paper's focus, but an index
    /// integrated into a DBMS (the paper's future work) must also produce
    /// the qualifying rows; selection cannot use the materialized shortcut,
    /// so contained subtrees are descended to their data pages.
    pub fn for_each_in_range(&self, range: &Mds, mut f: impl FnMut(&StoredRecord)) -> DcResult<()> {
        if range.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: range.num_dims(),
            });
        }
        let prepared = PreparedRange::new(&self.schema, range)?;
        self.select_rec(self.root, &prepared, &mut f)
    }

    /// Range selection collecting the matching records.
    pub fn range_records(&self, range: &Mds) -> DcResult<Vec<Record>> {
        let mut out = Vec::new();
        self.for_each_in_range(range, |r| out.push(r.record.clone()))?;
        Ok(out)
    }

    fn select_rec(
        &self,
        id: NodeId,
        range: &PreparedRange,
        f: &mut impl FnMut(&StoredRecord),
    ) -> DcResult<()> {
        let node = self.arena.get(id);
        self.io.read_keyed(id.0 as u64, node.blocks);
        match &node.kind {
            NodeKind::Data(records) => {
                for r in records {
                    if range.contains_record(&self.schema, &r.record)? {
                        f(r);
                    }
                }
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    if range.overlaps(&self.schema, &e.mds)? {
                        self.select_rec(e.child, range, f)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Counts the stored records equal to `record` (same leaf IDs and
    /// measure) — the point-query counterpart of [`Self::range_summary`].
    pub fn count_matching(&self, record: &Record) -> DcResult<u64> {
        self.schema.validate_record(record)?;
        let mut count = 0;
        self.count_rec(self.root, record, &mut count)?;
        Ok(count)
    }

    fn count_rec(&self, id: NodeId, record: &Record, count: &mut u64) -> DcResult<()> {
        let node = self.arena.get(id);
        self.io.read(node.blocks);
        match &node.kind {
            NodeKind::Data(records) => {
                *count += records.iter().filter(|r| &r.record == record).count() as u64;
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    if e.mds.contains_record(&self.schema, record)? {
                        self.count_rec(e.child, record, count)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Groups a range query's result by the values of one hierarchy level of
    /// one dimension — the roll-up primitive of OLAP ("revenue by region").
    ///
    /// Equivalent to one [`Self::range_summary`] per value of
    /// `(group_dim, group_level)` with `filter` additionally constrained to
    /// that value, but computed in a **single traversal**: a directory entry
    /// whose MDS maps to one group value (and is contained in the filter)
    /// contributes its materialized summary to that group directly.
    ///
    /// Returns the non-empty groups in ID order.
    pub fn group_by(
        &self,
        group_dim: DimensionId,
        group_level: dc_common::Level,
        filter: &Mds,
    ) -> DcResult<Vec<(ValueId, MeasureSummary)>> {
        if filter.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: filter.num_dims(),
            });
        }
        let h = self.schema.dim(group_dim);
        if group_level > h.top_level() {
            return Err(DcError::BadLevel {
                dim: group_dim,
                id: h.all(),
                requested: group_level,
            });
        }
        let prepared = PreparedRange::new(&self.schema, filter)?;
        self.group_by_prepared(group_dim, group_level, &prepared)
    }

    /// [`Self::group_by`] from an already-[prepared](Self::prepare_range)
    /// filter; same cross-schema contract as
    /// [`Self::range_summary_prepared`].
    pub fn group_by_prepared(
        &self,
        group_dim: DimensionId,
        group_level: dc_common::Level,
        prepared: &PreparedRange,
    ) -> DcResult<Vec<(ValueId, MeasureSummary)>> {
        if prepared.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: prepared.num_dims(),
            });
        }
        let h = self.schema.dim(group_dim);
        if group_level > h.top_level() {
            return Err(DcError::BadLevel {
                dim: group_dim,
                id: h.all(),
                requested: group_level,
            });
        }
        let mut groups: Vec<MeasureSummary> =
            vec![MeasureSummary::empty(); h.num_values_at(group_level)];
        self.group_rec(self.root, prepared, group_dim, group_level, &mut groups)?;
        Ok(groups
            .into_iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (ValueId::new(group_level, i as u32), s))
            .collect())
    }

    fn group_rec(
        &self,
        id: NodeId,
        filter: &PreparedRange,
        group_dim: DimensionId,
        group_level: dc_common::Level,
        groups: &mut [MeasureSummary],
    ) -> DcResult<()> {
        let node = self.arena.get(id);
        self.io.read(node.blocks);
        let h = self.schema.dim(group_dim);
        match &node.kind {
            NodeKind::Data(records) => {
                for r in records {
                    if filter.contains_record(&self.schema, &r.record)? {
                        let key =
                            h.ancestor_at(r.record.dims[group_dim.as_usize()], group_level)?;
                        groups[key.index() as usize].add(r.record.measure);
                    }
                }
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    if !filter.overlaps(&self.schema, &e.mds)? {
                        continue;
                    }
                    // The materialized shortcut applies when the entry lies
                    // fully inside the filter AND maps to a single group
                    // value (its group-dim set collapses to one ancestor).
                    let single_group = self.single_group_of(&e.mds, group_dim, group_level)?;
                    if self.config.use_materialized_aggregates
                        && filter.contains_entry(&self.schema, &e.mds)?
                    {
                        if let Some(key) = single_group {
                            groups[key.index() as usize].merge(&e.summary);
                            continue;
                        }
                    }
                    self.group_rec(e.child, filter, group_dim, group_level, groups)?;
                }
            }
        }
        Ok(())
    }

    /// If every value of `mds`'s group dimension lies below one single value
    /// on `group_level`, returns that value.
    fn single_group_of(
        &self,
        mds: &Mds,
        group_dim: DimensionId,
        group_level: dc_common::Level,
    ) -> DcResult<Option<ValueId>> {
        let h = self.schema.dim(group_dim);
        let set = mds.dim(group_dim.as_usize());
        if set.level() > group_level {
            return Ok(None); // coarser than the grouping level: spans many
        }
        let mut single: Option<ValueId> = None;
        for &v in set.values() {
            let anc = h.ancestor_at(v, group_level)?;
            match single {
                None => single = Some(anc),
                Some(prev) if prev == anc => {}
                Some(_) => return Ok(None),
            }
        }
        Ok(single)
    }

    /// Cross-tabulates a range query over two hierarchy levels — the pivot
    /// table of OLAP ("revenue by region × year"). Computed in a single
    /// traversal like [`Self::group_by`]; a directory entry mapping to one
    /// cell (single group value on *both* axes, contained in the filter)
    /// contributes its materialized summary directly.
    ///
    /// Returns the non-empty cells as `((row_value, column_value), summary)`
    /// in row-major ID order.
    #[allow(clippy::type_complexity)]
    pub fn pivot(
        &self,
        row: (DimensionId, dc_common::Level),
        column: (DimensionId, dc_common::Level),
        filter: &Mds,
    ) -> DcResult<Vec<((ValueId, ValueId), MeasureSummary)>> {
        if filter.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: filter.num_dims(),
            });
        }
        for &(dim, level) in [&row, &column] {
            let h = self.schema.dim(dim);
            if level > h.top_level() {
                return Err(DcError::BadLevel {
                    dim,
                    id: h.all(),
                    requested: level,
                });
            }
        }
        let cols = self.schema.dim(column.0).num_values_at(column.1).max(1);
        let rows = self.schema.dim(row.0).num_values_at(row.1).max(1);
        let prepared =
            PreparedRange::with_mode(&self.schema, filter, self.config.use_paper_fig7_containment)?;
        let mut cells = vec![MeasureSummary::empty(); rows * cols];
        self.pivot_rec(self.root, &prepared, row, column, cols, &mut cells)?;
        Ok(cells
            .into_iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| {
                (
                    (
                        ValueId::new(row.1, (i / cols) as u32),
                        ValueId::new(column.1, (i % cols) as u32),
                    ),
                    s,
                )
            })
            .collect())
    }

    fn pivot_rec(
        &self,
        id: NodeId,
        filter: &PreparedRange,
        row: (DimensionId, dc_common::Level),
        column: (DimensionId, dc_common::Level),
        cols: usize,
        cells: &mut [MeasureSummary],
    ) -> DcResult<()> {
        let node = self.arena.get(id);
        self.io.read(node.blocks);
        let hr = self.schema.dim(row.0);
        let hc = self.schema.dim(column.0);
        match &node.kind {
            NodeKind::Data(records) => {
                for r in records {
                    if filter.contains_record(&self.schema, &r.record)? {
                        let rk = hr.ancestor_at(r.record.dims[row.0.as_usize()], row.1)?;
                        let ck = hc.ancestor_at(r.record.dims[column.0.as_usize()], column.1)?;
                        cells[rk.index() as usize * cols + ck.index() as usize]
                            .add(r.record.measure);
                    }
                }
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    if !filter.overlaps(&self.schema, &e.mds)? {
                        continue;
                    }
                    if self.config.use_materialized_aggregates
                        && filter.contains_entry(&self.schema, &e.mds)?
                    {
                        let rk = self.single_group_of(&e.mds, row.0, row.1)?;
                        let ck = self.single_group_of(&e.mds, column.0, column.1)?;
                        if let (Some(rk), Some(ck)) = (rk, ck) {
                            cells[rk.index() as usize * cols + ck.index() as usize]
                                .merge(&e.summary);
                            continue;
                        }
                    }
                    self.pivot_rec(e.child, filter, row, column, cols, cells)?;
                }
            }
        }
        Ok(())
    }

    /// Rebuilds the tree from scratch via a hierarchy-sorted bulk load —
    /// compaction after heavy churn (deletes leave recycled arena slots and
    /// per-node slack that a fresh load removes). Record ids are preserved.
    pub fn rebuild(&mut self) -> DcResult<()> {
        let stored: Vec<StoredRecord> = self.iter_records().cloned().collect();
        let mut keys: Vec<(Vec<u32>, usize)> = stored
            .iter()
            .enumerate()
            .map(|(i, r)| Ok((self.schema.flatten_record(&r.record)?, i)))
            .collect::<DcResult<_>>()?;
        keys.sort();
        let mut slots: Vec<Option<StoredRecord>> = stored.into_iter().map(Some).collect();
        let sorted: Vec<StoredRecord> = keys
            .into_iter()
            .map(|(_, i)| slots[i].take().expect("each record index exactly once"))
            .collect();
        let mut fresh = DcTree::new(self.schema.clone(), self.config);
        fresh.len = sorted.len() as u64;
        fresh.next_record_id = self.next_record_id;
        if !sorted.is_empty() {
            fresh.build_from_sorted(sorted)?;
        }
        // Keep the I/O counters (the rebuild itself is accounted there).
        let io = self.io.clone();
        *self = fresh;
        self.io = io;
        Ok(())
    }

    /// Answers a batch of range queries on `threads` worker threads —
    /// queries take `&self`, so read parallelism is free (the
    /// `ConcurrentDcTree` wrapper serves the mixed read/write case).
    pub fn range_summaries_parallel(
        &self,
        queries: &[Mds],
        threads: usize,
    ) -> DcResult<Vec<MeasureSummary>> {
        let threads = threads.clamp(1, queries.len().max(1));
        let mut results = vec![MeasureSummary::empty(); queries.len()];
        let chunk = queries.len().div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (qs, rs) in queries.chunks(chunk).zip(results.chunks_mut(chunk)) {
                handles.push(scope.spawn(move || -> DcResult<()> {
                    for (q, r) in qs.iter().zip(rs.iter_mut()) {
                        *r = self.range_summary(q)?;
                    }
                    Ok(())
                }));
            }
            handles
                .into_iter()
                .try_for_each(|h| h.join().expect("query worker panicked"))
        })?;
        Ok(results)
    }

    // ------------------------------------------------------------------
    // Deletion ("fully dynamic")
    // ------------------------------------------------------------------

    /// Deletes one record equal to `record` (same leaf IDs and measure).
    /// Returns `false` if no such record exists.
    ///
    /// Materialized measures are maintained along the path; MDSs shrink back
    /// to minimality; underflowing nodes are dissolved and their records
    /// re-inserted (R-tree-style condensation).
    pub fn delete(&mut self, record: &Record) -> DcResult<bool> {
        self.schema.validate_record(record)?;
        let mut orphans = Vec::new();
        let found = self.delete_rec(self.root, record, &mut orphans)?;
        if !found {
            return Ok(false);
        }
        self.len -= 1;
        // Collapse a root with a single child.
        loop {
            let node = self.arena.get(self.root);
            match &node.kind {
                NodeKind::Dir(entries) if entries.len() == 1 => {
                    let child = entries[0].child;
                    self.arena.free(self.root);
                    self.root = child;
                }
                NodeKind::Dir(entries) if entries.is_empty() => {
                    let mds = Mds::all(&self.schema);
                    *self.arena.get_mut(self.root) = Node::new_data(mds);
                    break;
                }
                _ => break,
            }
        }
        for orphan in orphans {
            self.insert_stored(orphan)?;
        }
        Ok(true)
    }

    /// Replaces the measure of one record equal to `record` — the update
    /// operation completing the "fully dynamic" triad. Implemented as an
    /// atomic delete + insert (measure changes can move aggregates at every
    /// level, so the full maintenance path runs). Returns `false` when no
    /// matching record exists.
    pub fn update_measure(&mut self, record: &Record, new_measure: Measure) -> DcResult<bool> {
        if !self.delete(record)? {
            return Ok(false);
        }
        let mut updated = record.clone();
        updated.measure = new_measure;
        self.insert(updated)?;
        Ok(true)
    }

    /// Recursive delete; returns whether the record was found and removed in
    /// this subtree. Underflowing children are dissolved into `orphans`.
    fn delete_rec(
        &mut self,
        id: NodeId,
        record: &Record,
        orphans: &mut Vec<StoredRecord>,
    ) -> DcResult<bool> {
        self.io.read(self.arena.get(id).blocks);
        if self.arena.get(id).is_data() {
            let pos = {
                let node = self.arena.get(id);
                node.records().iter().position(|r| &r.record == record)
            };
            let Some(pos) = pos else { return Ok(false) };
            self.arena.get_mut(id).records_mut().remove(pos);
            self.recompute_node(id)?;
            self.io.write(self.arena.get(id).blocks);
            return Ok(true);
        }

        let candidates: Vec<(usize, NodeId)> = {
            let node = self.arena.get(id);
            let mut v = Vec::new();
            for (i, e) in node.entries().iter().enumerate() {
                if e.mds.contains_record(&self.schema, record)? {
                    v.push((i, e.child));
                }
            }
            v
        };
        for (i, child) in candidates {
            if !self.delete_rec(child, record, orphans)? {
                continue;
            }
            let child_node = self.arena.get(child);
            let min_fill_len = self.config.min_group(match child_node.kind {
                NodeKind::Data(_) => self.config.data_capacity,
                NodeKind::Dir(_) => self.config.dir_capacity,
            });
            if child_node.len() < min_fill_len {
                // Dissolve the child: collect its records for re-insertion.
                self.collect_subtree(child, orphans);
                self.arena.get_mut(id).entries_mut().remove(i);
            } else {
                // Maybe shrink a supernode that no longer needs its blocks.
                let cap_per_block = if child_node.is_data() {
                    self.config.data_capacity
                } else {
                    self.config.dir_capacity
                };
                let needed = (child_node.len().div_ceil(cap_per_block)).max(1) as u32;
                if needed < child_node.blocks {
                    self.arena.get_mut(child).blocks = needed;
                }
                let refreshed = self.entry_for(child);
                self.arena.get_mut(id).entries_mut()[i] = refreshed;
            }
            self.recompute_node(id)?;
            self.io.write(self.arena.get(id).blocks);
            return Ok(true);
        }
        Ok(false)
    }

    /// Recomputes a node's summary and shrinks its MDS to the minimal cover
    /// of its content at the node's current relevant levels.
    fn recompute_node(&mut self, id: NodeId) -> DcResult<()> {
        let levels = self.arena.get(id).mds.levels();
        let (mds, summary) = {
            let node = self.arena.get(id);
            match &node.kind {
                NodeKind::Data(records) => {
                    if records.is_empty() {
                        (node.mds.clone(), MeasureSummary::empty())
                    } else {
                        let mut mds: Option<Mds> = None;
                        let mut summary = MeasureSummary::empty();
                        for r in records {
                            summary.add(r.record.measure);
                            let p = Mds::from_record(&r.record)
                                .adapt_to_levels(&self.schema, &levels)?;
                            mds = Some(match mds {
                                None => p,
                                Some(m) => m.union_aligned(&p),
                            });
                        }
                        (mds.unwrap(), summary)
                    }
                }
                NodeKind::Dir(entries) => {
                    // Lazy refinement may have left this node's MDS finer
                    // than some entries; the recomputed cover can go no
                    // deeper than the coarsest entry per dimension.
                    let levels: Vec<u8> = (0..node.mds.num_dims())
                        .map(|dim| {
                            entries
                                .iter()
                                .map(|e| e.mds.dim(dim).level())
                                .max()
                                .unwrap_or(levels[dim])
                        })
                        .collect();
                    let mut mds: Option<Mds> = None;
                    let mut summary = MeasureSummary::empty();
                    for e in entries {
                        summary.merge(&e.summary);
                        let p = e.mds.adapt_to_levels(&self.schema, &levels)?;
                        mds = Some(match mds {
                            None => p,
                            Some(m) => m.union_aligned(&p),
                        });
                    }
                    (mds.unwrap_or_else(|| node.mds.clone()), summary)
                }
            }
        };
        let node = self.arena.get_mut(id);
        node.mds = mds;
        node.summary = summary;
        Ok(())
    }

    /// Collects every record below `id` and frees the whole subtree.
    fn collect_subtree(&mut self, id: NodeId, out: &mut Vec<StoredRecord>) {
        let node = self.arena.get(id);
        self.io.read(node.blocks);
        match &node.kind {
            NodeKind::Data(_) => {
                let node = self.arena.get_mut(id);
                out.append(node.records_mut());
            }
            NodeKind::Dir(entries) => {
                let children: Vec<NodeId> = entries.iter().map(|e| e.child).collect();
                for c in children {
                    self.collect_subtree(c, out);
                }
            }
        }
        self.arena.free(id);
    }

    /// Iterates over every stored record (diagnostics and tests; order is
    /// unspecified).
    pub fn iter_records(&self) -> impl Iterator<Item = &StoredRecord> {
        self.arena.iter().flat_map(|(_, n)| match &n.kind {
            NodeKind::Data(records) => records.iter(),
            NodeKind::Dir(_) => [].iter(),
        })
    }
}

/// Splits `items` into the subsets selected by `idx1` / `idx2` (disjoint,
/// covering index sets).
fn partition_by_index<T>(
    items: Vec<T>,
    idx1: &[usize],
    idx2: &[usize],
    out1: &mut Vec<T>,
    out2: &mut Vec<T>,
) {
    debug_assert_eq!(idx1.len() + idx2.len(), items.len());
    let mut take1 = vec![false; items.len()];
    for &i in idx1 {
        take1[i] = true;
    }
    let _ = idx2;
    for (i, item) in items.into_iter().enumerate() {
        if take1[i] {
            out1.push(item);
        } else {
            out2.push(item);
        }
    }
}

fn blocks_needed(node: &Node, data_cap: usize, dir_cap: usize) -> u32 {
    let cap = if node.is_data() { data_cap } else { dir_cap };
    (node.len().div_ceil(cap)).max(1) as u32
}
