//! # dc-tree
//!
//! The **DC-tree**: a fully dynamic index structure for data warehouses
//! modelled as a data cube (Ester, Kohlhammer, Kriegel; ICDE 2000).
//!
//! The DC-tree is a hierarchical, X-tree-like index whose node regions are
//! [minimum describing sequences] over the [concept hierarchies] of the cube
//! dimensions, and whose directory entries *materialize the measure
//! aggregate* of the records below them. Range queries whose range fully
//! contains an entry's MDS are answered from the materialized aggregate
//! without descending — the source of the paper's reported speedups (≈4.5×
//! over the X-tree, ≈12.5× over a sequential scan at 25% selectivity).
//!
//! Unlike the bulk-update data-warehouse indexes it was designed to replace,
//! the DC-tree is updated **record at a time**: inserting a record assigns
//! IDs to its attribute values (growing the concept hierarchies
//! dynamically), descends the directory updating the materialized measures,
//! and splits overfull nodes with the *hierarchy split* — or grows them into
//! multi-block *supernodes* when no balanced, low-overlap split exists.
//!
//! ## Quick start
//!
//! ```
//! use dc_hierarchy::{CubeSchema, HierarchySchema};
//! use dc_tree::{DcTree, DcTreeConfig};
//! use dc_mds::{DimSet, Mds};
//! use dc_common::AggregateOp;
//!
//! // A two-dimensional cube: Customer (Region→Nation) × Time (Year→Month).
//! let schema = CubeSchema::new(
//!     vec![
//!         HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
//!         HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
//!     ],
//!     "Revenue",
//! );
//! let mut tree = DcTree::new(schema, DcTreeConfig::default());
//!
//! // Fully dynamic: insert raw records one at a time.
//! tree.insert_raw(&[vec!["Europe", "Germany"], vec!["1996", "03"]], 1200).unwrap();
//! tree.insert_raw(&[vec!["Europe", "France"], vec!["1996", "07"]], 800).unwrap();
//! tree.insert_raw(&[vec!["Asia", "Japan"], vec!["1997", "01"]], 500).unwrap();
//!
//! // Range query: all European revenue in 1996.
//! let europe = tree.schema().dim(dc_common::DimensionId(0))
//!     .lookup_path(&["Europe"]).unwrap();
//! let y1996 = tree.schema().dim(dc_common::DimensionId(1))
//!     .lookup_path(&["1996"]).unwrap();
//! let query = Mds::new(vec![DimSet::singleton(europe), DimSet::singleton(y1996)]);
//! let sum = tree.range_query(&query, AggregateOp::Sum).unwrap();
//! assert_eq!(sum, Some(2000.0));
//! ```
//!
//! [minimum describing sequences]: dc_mds::Mds
//! [concept hierarchies]: dc_hierarchy::ConceptHierarchy

pub mod checker;
pub mod config;
pub mod disk;
pub mod node;
pub mod persist;
pub mod persist_paged;
pub mod query;
pub mod split;
pub mod stats;
pub mod store;
pub mod tree;

pub use config::DcTreeConfig;
pub use disk::{DiskDcTree, PagedDcTree};
pub use persist_paged::PagedTreeStore;
pub use query::PreparedRange;
pub use stats::{DeadSpaceReport, LevelStat, TreeStats};
pub use store::{ChainStore, NodeStore};
pub use tree::{DcTree, TreeMetrics};
