//! The node-storage abstraction behind the paged DC-tree.
//!
//! [`PagedDcTree`](crate::disk::PagedDcTree) holds the DC-tree *algorithms*
//! (choose-subtree, hierarchy split, condensation, materialized range
//! queries); a [`NodeStore`] holds the *pages*. The split lets the same
//! tree run over the single-threaded [`ChainStore`] here (a `BufferPool`
//! behind a `RefCell`, as used by tests and tools) and over the concurrent,
//! scan-resistant pool in `dc-oocore` (compressed node pages served to the
//! sharded engine) without duplicating any tree logic.
//!
//! All methods take `&self`: stores that need interior mutability (every
//! pool does — a read can evict) wrap their state themselves. Handles are
//! [`PageId`]s; for chain stores the handle is the head page of the node's
//! page chain, and directory entries persist it through
//! [`NodeId::raw`](crate::node::NodeId::raw).

use std::cell::RefCell;
use std::path::Path;

use dc_common::{DcError, DcResult};
use dc_storage::{BlockConfig, BufferPool, ByteReader, ByteWriter, PageId, PagedFile, PoolStats};

use crate::node::Node;
use crate::persist::{read_node, write_node};

/// Sentinel `next` link terminating a page chain.
pub const CHAIN_NONE: u64 = u64::MAX;
/// Per-page chain header: `[next: u64][len: u32]`.
pub const PAGE_HEADER: usize = 8 + 4;
/// The page holding the head of the metadata chain (page 0 is the paged
/// file's own header).
pub const META_PAGE: u64 = 1;

/// Page-granular storage for DC-tree nodes plus one metadata blob.
///
/// The tree treats handles as opaque; a store may place a node in a single
/// page, a chain, or anything else addressable by a `PageId`.
pub trait NodeStore {
    /// Loads and decodes the node at `page`. `num_dims` is the cube's
    /// dimensionality (needed to decode MDS sets).
    fn load_node(&self, page: PageId, num_dims: usize) -> DcResult<Node>;

    /// Re-encodes `node` over the storage already headed at `page`.
    fn store_node(&self, page: PageId, node: &Node) -> DcResult<()>;

    /// Allocates storage for a fresh node and writes it.
    fn alloc_node(&self, node: &Node) -> DcResult<PageId>;

    /// Releases the node at `page`.
    fn free_node(&self, page: PageId) -> DcResult<()>;

    /// Reads the metadata blob (tree root, counters, schema).
    fn read_meta(&self) -> DcResult<Vec<u8>>;

    /// Rewrites the metadata blob.
    fn write_meta(&self, bytes: &[u8]) -> DcResult<()>;

    /// Forces every buffered write down to durable storage.
    fn sync(&self) -> DcResult<()>;
}

// ----------------------------------------------------------------------
// Chain primitives (shared layout with the paged checkpoint store):
// every node is a chain of pages `[next: u64][len: u32][payload]`.
// ----------------------------------------------------------------------

pub(crate) fn read_chain(pool: &mut BufferPool, head: PageId) -> DcResult<Vec<u8>> {
    let mut out = Vec::new();
    let mut page = head.0;
    let mut guard = 0usize;
    while page != CHAIN_NONE {
        let (next, chunk) = pool.with_page(PageId(page), |d| {
            let next = u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(d[8..12].try_into().expect("4 bytes")) as usize;
            let len = len.min(d.len() - PAGE_HEADER);
            (next, d[PAGE_HEADER..PAGE_HEADER + len].to_vec())
        })?;
        out.extend_from_slice(&chunk);
        page = next;
        guard += 1;
        if guard > 1 << 22 {
            return Err(DcError::Corrupt("page chain cycle".into()));
        }
    }
    Ok(out)
}

pub(crate) fn chain_pages(pool: &mut BufferPool, head: PageId) -> DcResult<Vec<PageId>> {
    let mut pages = vec![head];
    let mut page = head.0;
    loop {
        let next = pool.with_page(PageId(page), |d| {
            u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"))
        })?;
        if next == CHAIN_NONE {
            return Ok(pages);
        }
        pages.push(PageId(next));
        page = next;
        if pages.len() > 1 << 22 {
            return Err(DcError::Corrupt("page chain cycle".into()));
        }
    }
}

/// Rewrites the chain headed at `head` (which stays the head) to hold
/// `bytes`, reusing pages, allocating extras, freeing spares.
pub(crate) fn write_chain(
    pool: &mut BufferPool,
    head: PageId,
    bytes: &[u8],
    payload_per_page: usize,
) -> DcResult<()> {
    let mut existing = chain_pages(pool, head)?;
    let chunks: Vec<&[u8]> = if bytes.is_empty() {
        vec![&[][..]]
    } else {
        bytes.chunks(payload_per_page).collect()
    };
    // Grow or shrink the page list to match.
    while existing.len() < chunks.len() {
        let p = pool.alloc()?;
        existing.push(p);
    }
    while existing.len() > chunks.len() {
        let spare = existing.pop().expect("len checked");
        pool.free(spare)?;
    }
    for (i, chunk) in chunks.iter().enumerate() {
        let next = if i + 1 < existing.len() {
            existing[i + 1].0
        } else {
            CHAIN_NONE
        };
        pool.with_page_mut(existing[i], |d| {
            d[0..8].copy_from_slice(&next.to_le_bytes());
            d[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
            d[PAGE_HEADER..PAGE_HEADER + chunk.len()].copy_from_slice(chunk);
        })?;
    }
    Ok(())
}

pub(crate) fn free_chain(pool: &mut BufferPool, head: PageId) -> DcResult<()> {
    for page in chain_pages(pool, head)? {
        pool.free(page)?;
    }
    Ok(())
}

/// Marks a fresh page as an empty, terminated chain.
pub(crate) fn init_chain(pool: &mut BufferPool, head: PageId) -> DcResult<()> {
    pool.with_page_mut(head, |d| {
        d[0..8].copy_from_slice(&CHAIN_NONE.to_le_bytes());
        d[8..12].copy_from_slice(&0u32.to_le_bytes());
    })
}

/// The single-threaded chain store: a [`BufferPool`] over a [`PagedFile`],
/// nodes encoded with the plain (uncompressed) persist codec. This is the
/// store behind [`DiskDcTree`](crate::disk::DiskDcTree).
#[derive(Debug)]
pub struct ChainStore {
    pool: RefCell<BufferPool>,
    payload: usize,
}

impl ChainStore {
    /// Creates a fresh chain store at `path` (truncating any existing
    /// file); `frames` bounds the buffer pool.
    pub fn create(path: impl AsRef<Path>, block: BlockConfig, frames: usize) -> DcResult<Self> {
        let file = PagedFile::create(path, block)?;
        let mut pool = BufferPool::new(file, frames);
        let meta = pool.alloc()?;
        debug_assert_eq!(meta.0, META_PAGE, "metadata occupies page 1");
        init_chain(&mut pool, meta)?;
        Ok(ChainStore {
            pool: RefCell::new(pool),
            payload: block.block_size - PAGE_HEADER,
        })
    }

    /// Opens an existing chain store.
    pub fn open(path: impl AsRef<Path>, block: BlockConfig, frames: usize) -> DcResult<Self> {
        let file = PagedFile::open(path, block)?;
        let pool = BufferPool::new(file, frames);
        Ok(ChainStore {
            pool: RefCell::new(pool),
            payload: block.block_size - PAGE_HEADER,
        })
    }

    /// Buffer-pool counters: real page hits, misses, write-backs.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.borrow().stats()
    }
}

impl NodeStore for ChainStore {
    fn load_node(&self, page: PageId, num_dims: usize) -> DcResult<Node> {
        let bytes = read_chain(&mut self.pool.borrow_mut(), page)?;
        let mut r = ByteReader::new(&bytes);
        let node = read_node(&mut r, num_dims)?;
        r.expect_end()?;
        Ok(node)
    }

    fn store_node(&self, page: PageId, node: &Node) -> DcResult<()> {
        let mut w = ByteWriter::new();
        write_node(&mut w, node);
        write_chain(
            &mut self.pool.borrow_mut(),
            page,
            &w.into_vec(),
            self.payload,
        )
    }

    fn alloc_node(&self, node: &Node) -> DcResult<PageId> {
        let head = {
            let mut pool = self.pool.borrow_mut();
            let head = pool.alloc()?;
            // Fresh pages are zeroed; initialize an empty chain terminator
            // before the real store.
            init_chain(&mut pool, head)?;
            head
        };
        self.store_node(head, node)?;
        Ok(head)
    }

    fn free_node(&self, page: PageId) -> DcResult<()> {
        free_chain(&mut self.pool.borrow_mut(), page)
    }

    fn read_meta(&self) -> DcResult<Vec<u8>> {
        read_chain(&mut self.pool.borrow_mut(), PageId(META_PAGE))
    }

    fn write_meta(&self, bytes: &[u8]) -> DcResult<()> {
        write_chain(
            &mut self.pool.borrow_mut(),
            PageId(META_PAGE),
            bytes,
            self.payload,
        )
    }

    fn sync(&self) -> DcResult<()> {
        self.pool.borrow_mut().flush()
    }
}
