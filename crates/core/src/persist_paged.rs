//! Paged persistence: the tree image stored in a [`PagedFile`] page chain.
//!
//! [`DcTree::to_bytes`] produces one contiguous image; this module chunks it
//! across fixed-size pages linked through their first eight bytes, with the
//! chain head recorded in a directory page. Compared with the flat-file path
//! (`save_to`/`load_from`) this demonstrates how the tree coexists with
//! other data in a block-structured database file, reusing freed pages on
//! every save.

use dc_common::{DcError, DcResult};
use dc_storage::{BufferPool, PageId, PagedFile};

use crate::tree::DcTree;

const CHAIN_NONE: u64 = u64::MAX;

/// Layout of each chain page: `[next: u64][len: u32][payload…]`.
const PAGE_HEADER: usize = 8 + 4;

/// A DC-tree image stored as a page chain inside a shared paged file.
///
/// The store owns a [`BufferPool`]; the chain head and length live on a
/// dedicated directory page (allocated on first save) so multiple saves
/// replace the previous image and recycle its pages.
#[derive(Debug)]
pub struct PagedTreeStore {
    pool: BufferPool,
    directory: PageId,
}

impl PagedTreeStore {
    /// Creates a store on a fresh paged file wrapped in a pool of
    /// `frames` buffer frames.
    pub fn create(file: PagedFile, frames: usize) -> DcResult<Self> {
        let mut pool = BufferPool::new(file, frames);
        let directory = pool.alloc()?;
        // Directory layout: [chain head: u64][image length: u64].
        pool.with_page_mut(directory, |d| {
            d[0..8].copy_from_slice(&CHAIN_NONE.to_le_bytes());
            d[8..16].copy_from_slice(&0u64.to_le_bytes());
        })?;
        Ok(PagedTreeStore { pool, directory })
    }

    /// Opens a store whose directory page is `directory` (page 1 for stores
    /// made by [`Self::create`] on a fresh file).
    pub fn open(file: PagedFile, frames: usize, directory: PageId) -> Self {
        PagedTreeStore {
            pool: BufferPool::new(file, frames),
            directory,
        }
    }

    /// The directory page (persist it alongside the file path).
    pub fn directory(&self) -> PageId {
        self.directory
    }

    /// Access to the pool (stats, flush).
    pub fn pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    fn read_directory(&mut self) -> DcResult<(u64, u64)> {
        self.pool.with_page(self.directory, |d| {
            let head = u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(d[8..16].try_into().expect("8 bytes"));
            (head, len)
        })
    }

    fn free_chain(&mut self, mut head: u64) -> DcResult<()> {
        while head != CHAIN_NONE {
            let next = self.pool.with_page(PageId(head), |d| {
                u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"))
            })?;
            self.pool.free(PageId(head))?;
            head = next;
        }
        Ok(())
    }

    /// Saves `tree`, replacing any previous image and recycling its pages.
    pub fn save(&mut self, tree: &DcTree) -> DcResult<()> {
        let image = tree.to_bytes();
        let (old_head, _) = self.read_directory()?;

        let page_size = self.pool.file_mut().page_size();
        let payload = page_size - PAGE_HEADER;
        // Build the chain back to front so each page knows its successor.
        let mut next = CHAIN_NONE;
        let chunks: Vec<&[u8]> = image.chunks(payload).collect();
        for chunk in chunks.iter().rev() {
            let page = self.pool.alloc()?;
            let next_val = next;
            self.pool.with_page_mut(page, |d| {
                d[0..8].copy_from_slice(&next_val.to_le_bytes());
                d[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
                d[PAGE_HEADER..PAGE_HEADER + chunk.len()].copy_from_slice(chunk);
            })?;
            next = page.0;
        }
        let head = next;
        let image_len = image.len() as u64;
        self.pool.with_page_mut(self.directory, |d| {
            d[0..8].copy_from_slice(&head.to_le_bytes());
            d[8..16].copy_from_slice(&image_len.to_le_bytes());
        })?;
        // Only recycle the old image after the new one is fully linked.
        self.free_chain(old_head)?;
        self.pool.flush()
    }

    /// Loads the most recently saved tree.
    pub fn load(&mut self) -> DcResult<DcTree> {
        let (mut head, len) = self.read_directory()?;
        if head == CHAIN_NONE {
            return Err(DcError::Corrupt("store holds no tree image".into()));
        }
        let mut image = Vec::with_capacity(len as usize);
        while head != CHAIN_NONE {
            let (next, chunk) = self.pool.with_page(PageId(head), |d| {
                let next = u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"));
                let clen = u32::from_le_bytes(d[8..12].try_into().expect("4 bytes")) as usize;
                (
                    next,
                    d[PAGE_HEADER..PAGE_HEADER + clen.min(d.len() - PAGE_HEADER)].to_vec(),
                )
            })?;
            image.extend_from_slice(&chunk);
            if image.len() as u64 > len {
                return Err(DcError::Corrupt(
                    "page chain longer than recorded image".into(),
                ));
            }
            head = next;
        }
        if image.len() as u64 != len {
            return Err(DcError::Corrupt(format!(
                "image truncated: {} of {len} bytes",
                image.len()
            )));
        }
        DcTree::from_bytes(&image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DcTreeConfig;
    use dc_hierarchy::{CubeSchema, HierarchySchema};
    use dc_storage::BlockConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dctree-paged-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn sample_tree(n: usize) -> DcTree {
        let schema = CubeSchema::new(
            vec![
                HierarchySchema::new("D0", vec!["A".into(), "B".into()]),
                HierarchySchema::new("D1", vec!["Y".into(), "M".into()]),
            ],
            "m",
        );
        let mut tree = DcTree::new(
            schema,
            DcTreeConfig {
                dir_capacity: 4,
                data_capacity: 4,
                ..DcTreeConfig::default()
            },
        );
        for i in 0..n {
            tree.insert_raw(
                &[
                    vec![format!("a{}", i % 3), format!("a{}b{}", i % 3, i % 7)],
                    vec![format!("y{}", i % 2), format!("y{}m{}", i % 2, i % 5)],
                ],
                i as i64,
            )
            .unwrap();
        }
        tree
    }

    #[test]
    fn save_load_roundtrip_through_pages() {
        let path = tmp("roundtrip");
        let file = PagedFile::create(&path, BlockConfig::new(256)).unwrap();
        let mut store = PagedTreeStore::create(file, 8).unwrap();
        let tree = sample_tree(200);
        store.save(&tree).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.to_bytes(), tree.to_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resave_recycles_pages() {
        let path = tmp("recycle");
        let file = PagedFile::create(&path, BlockConfig::new(256)).unwrap();
        let mut store = PagedTreeStore::create(file, 8).unwrap();
        let tree = sample_tree(150);
        store.save(&tree).unwrap();
        let pages_after_first = store.pool_mut().file_mut().num_pages();
        // Each save writes the new chain before freeing the old (the
        // crash-safe order), so the file peaks at two chains and then
        // recycles: repeated saves must not grow past that plateau.
        for _ in 0..5 {
            store.save(&tree).unwrap();
        }
        let pages_after_many = store.pool_mut().file_mut().num_pages();
        assert!(
            pages_after_many <= 2 * pages_after_first + 1,
            "file grew from {pages_after_first} to {pages_after_many} pages"
        );
        assert_eq!(store.load().unwrap().to_bytes(), tree.to_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_from_disk() {
        let path = tmp("reopen");
        let tree = sample_tree(120);
        let directory;
        {
            let file = PagedFile::create(&path, BlockConfig::new(512)).unwrap();
            let mut store = PagedTreeStore::create(file, 4).unwrap();
            directory = store.directory();
            store.save(&tree).unwrap();
        }
        let file = PagedFile::open(&path, BlockConfig::new(512)).unwrap();
        let mut store = PagedTreeStore::open(file, 4, directory);
        let loaded = store.load().unwrap();
        assert_eq!(loaded.total_summary(), tree.total_summary());
        loaded.check_invariants().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loading_an_empty_store_fails_cleanly() {
        let path = tmp("empty");
        let file = PagedFile::create(&path, BlockConfig::new(256)).unwrap();
        let mut store = PagedTreeStore::create(file, 4).unwrap();
        assert!(matches!(store.load(), Err(DcError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
