//! Prepared range queries.
//!
//! The naive range-query algorithm (Fig. 7) adapts the *query* MDS to the
//! entry's level for every directory entry it inspects. With large query
//! MDSs (the paper's 25%-selectivity runs reach hundreds of values per
//! dimension) that re-adaptation dominates the runtime — the effect the
//! paper itself observes: "a larger query MDS involves more expensive
//! computations of the overlap, because a large MDS consists of large sets
//! for the single dimensions."
//!
//! A `PreparedRange` hoists that work out of the traversal: per dimension
//! it precomputes, once, the query's value set adapted to **every** level at
//! or above the query level. Each entry test then degenerates to
//! parent-pointer walks and O(1) bitset probes against the precomputed sets.

use std::cell::RefCell;

use dc_common::{DcResult, Level, ValueId};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;

/// Upper bound on recycled bitset backing stores kept per thread. Generous
/// for any realistic query shape (dims × levels) while bounding the pool if
/// a pathological workload churns huge prepared ranges.
const WORD_POOL_CAP: usize = 256;

/// Per-thread scratch for [`PreparedRange`] construction: recycled bitset
/// word vectors and the ping/pong buffers used by the up-adaptation loop.
/// Steady-state preparation on a warm thread reuses these instead of
/// allocating, which is what keeps the serving engine's query path free of
/// per-query heap churn once the pool threads have warmed up.
#[derive(Default)]
struct PrepScratch {
    /// Recycled `LevelBits` backing stores, returned on `PreparedRange` drop.
    words: Vec<Vec<u64>>,
    /// Up-adaptation ping buffer (the set at the current level).
    current: Vec<ValueId>,
    /// Up-adaptation pong buffer (the set lifted one level).
    up: Vec<ValueId>,
}

thread_local! {
    static PREP_SCRATCH: RefCell<PrepScratch> = RefCell::new(PrepScratch::default());
}

/// A dense bitset over the per-level index space of one hierarchy level.
#[derive(Clone, Debug)]
struct LevelBits {
    words: Vec<u64>,
}

impl LevelBits {
    /// Builds the bitset backed by a recycled word vector when the pool has
    /// one, a fresh allocation otherwise.
    fn from_values_pooled(values: &[ValueId], universe: usize, pool: &mut Vec<Vec<u64>>) -> Self {
        let n = universe.div_ceil(64).max(1);
        let mut words = pool.pop().unwrap_or_default();
        words.clear();
        words.resize(n, 0);
        for v in values {
            let idx = v.index() as usize;
            words[idx / 64] |= 1 << (idx % 64);
        }
        LevelBits { words }
    }

    #[inline]
    fn contains(&self, v: ValueId) -> bool {
        let idx = v.index() as usize;
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }
}

/// One dimension of a prepared range: the query's set, pre-adapted to every
/// level from the query level up to `ALL`, as O(1)-membership bitsets.
#[derive(Clone, Debug)]
struct PreparedDim {
    /// The query's own relevant level.
    level: Level,
    /// `bits[l - level]` = the query set adapted to level `l`.
    bits: Vec<LevelBits>,
}

impl PreparedDim {
    /// Membership in the query set adapted to `level` (≥ the query level).
    #[inline]
    fn contains_at(&self, level: Level, v: ValueId) -> bool {
        self.bits[(level - self.level) as usize].contains(v)
    }
}

/// A range MDS preprocessed for fast entry tests: every per-entry and
/// per-record test reduces to parent-pointer walks plus O(1) bit probes.
///
/// # Shared preparation across shards
///
/// Preparation only consults the hierarchy of the **query's own values**
/// (their parents, and per-level universe sizes for bitset width). In the
/// sharded engine every shard schema is a strict prefix of the global
/// catalog schema — same `ValueId`s, same parents — so a range prepared once
/// against the catalog is valid for evaluation against *any* shard: the
/// traversal only probes shard-known values, whose bits are where the
/// catalog put them. This is what lets `ShardedDcTree` prepare a query once
/// instead of once per shard.
///
/// Dropping a `PreparedRange` returns its bitset backing stores to the
/// dropping thread's scratch pool, so a warm query thread re-prepares
/// without touching the allocator.
#[derive(Debug)]
pub struct PreparedRange {
    dims: Vec<PreparedDim>,
    /// Reproduce the paper's literal (unsound) Fig. 7 adaptation: when the
    /// entry is coarser than the query, lift the *query* to the entry's
    /// level and test subset there. See `DcTreeConfig::use_paper_fig7_containment`.
    paper_containment: bool,
}

impl Clone for PreparedRange {
    fn clone(&self) -> Self {
        PreparedRange {
            dims: self.dims.clone(),
            paper_containment: self.paper_containment,
        }
    }
}

impl Drop for PreparedRange {
    fn drop(&mut self) {
        // Recycle the word vectors into the dropping thread's pool. `try_with`
        // because TLS may already be torn down during thread exit.
        let _ = PREP_SCRATCH.try_with(|s| {
            let pool = &mut s.borrow_mut().words;
            for d in &mut self.dims {
                for b in &mut d.bits {
                    if pool.len() >= WORD_POOL_CAP {
                        return;
                    }
                    pool.push(std::mem::take(&mut b.words));
                }
            }
        });
    }
}

impl PreparedRange {
    /// Prepares `range` against `schema`: O(size × levels) once, instead of
    /// per directory entry.
    pub fn new(schema: &CubeSchema, range: &Mds) -> DcResult<Self> {
        Self::with_mode(schema, range, false)
    }

    /// Prepares `range` with an explicit containment mode, reusing the
    /// calling thread's scratch buffers.
    pub fn with_mode(schema: &CubeSchema, range: &Mds, paper_containment: bool) -> DcResult<Self> {
        PREP_SCRATCH.with(|s| {
            Self::with_mode_scratch(schema, range, paper_containment, &mut s.borrow_mut())
        })
    }

    fn with_mode_scratch(
        schema: &CubeSchema,
        range: &Mds,
        paper_containment: bool,
        scratch: &mut PrepScratch,
    ) -> DcResult<Self> {
        let mut dims = Vec::with_capacity(range.num_dims());
        for (set, h) in range.dims().zip(schema.dims()) {
            let level = set.level();
            let mut bits = vec![LevelBits::from_values_pooled(
                set.values(),
                h.num_values_at(level),
                &mut scratch.words,
            )];
            scratch.current.clear();
            scratch.current.extend_from_slice(set.values());
            for l in level..h.top_level() {
                scratch.up.clear();
                for &v in &scratch.current {
                    scratch.up.push(h.parent(v)?.expect("below ALL"));
                }
                scratch.up.sort_unstable();
                scratch.up.dedup();
                bits.push(LevelBits::from_values_pooled(
                    &scratch.up,
                    h.num_values_at(l + 1),
                    &mut scratch.words,
                ));
                std::mem::swap(&mut scratch.current, &mut scratch.up);
            }
            dims.push(PreparedDim { level, bits });
        }
        Ok(PreparedRange {
            dims,
            paper_containment,
        })
    }

    /// Number of dimensions the range was prepared over.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Whether this range was prepared in the paper's literal Fig. 7
    /// containment mode (the documented-unsound ablation).
    pub fn paper_containment(&self) -> bool {
        self.paper_containment
    }

    /// `true` iff `entry` overlaps the range in every dimension — the
    /// pruning test of Fig. 7, with the query side precomputed.
    pub fn overlaps(&self, schema: &CubeSchema, entry: &Mds) -> DcResult<bool> {
        for ((p, e), h) in self.dims.iter().zip(entry.dims()).zip(schema.dims()) {
            let le = e.level();
            let hit = if le >= p.level {
                // Query adapted up to the entry's level: probe each entry
                // value against the precomputed bitset.
                e.values().iter().any(|&v| p.contains_at(le, v))
            } else {
                // Entry is finer: lift each entry value to the query level.
                let mut any = false;
                for &v in e.values() {
                    if p.contains_at(p.level, h.ancestor_at(v, p.level)?) {
                        any = true;
                        break;
                    }
                }
                any
            };
            if !hit {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// `true` iff `entry` is fully contained in the range (Definition 4
    /// domination) — the materialized-measure shortcut of Fig. 7.
    pub fn contains_entry(&self, schema: &CubeSchema, entry: &Mds) -> DcResult<bool> {
        for ((p, e), h) in self.dims.iter().zip(entry.dims()).zip(schema.dims()) {
            if e.level() > p.level {
                if !self.paper_containment {
                    return Ok(false); // coarser than the range: cannot be inside
                }
                // Paper mode (Fig. 7 literal): lift the query to the
                // entry's level and test subset there — over-approximate.
                for &v in e.values() {
                    if !p.contains_at(e.level(), v) {
                        return Ok(false);
                    }
                }
                continue;
            }
            for &v in e.values() {
                if !p.contains_at(p.level, h.ancestor_at(v, p.level)?) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// `true` iff the record is selected by the range.
    pub fn contains_record(&self, schema: &CubeSchema, record: &Record) -> DcResult<bool> {
        for ((p, &leaf), h) in self.dims.iter().zip(&record.dims).zip(schema.dims()) {
            let anc = h.ancestor_at(leaf, p.level)?;
            if !p.contains_at(p.level, anc) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Consistency helper for tests: the prepared tests must agree with the
/// direct MDS algebra.
#[cfg(test)]
pub(crate) fn agrees_with_mds(
    schema: &CubeSchema,
    range: &Mds,
    entry: &Mds,
) -> DcResult<(bool, bool)> {
    let p = PreparedRange::new(schema, range)?;
    let fast = (p.overlaps(schema, entry)?, p.contains_entry(schema, entry)?);
    let slow = (
        entry.overlaps(range, schema)?,
        entry.contained_in(range, schema)?,
    );
    assert_eq!(fast, slow, "prepared query diverges from MDS algebra");
    Ok(fast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_common::DimensionId;
    use dc_hierarchy::HierarchySchema;
    use dc_mds::DimSet;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn schema() -> CubeSchema {
        let mut s = CubeSchema::new(
            vec![
                HierarchySchema::new(
                    "Customer",
                    vec!["Region".into(), "Nation".into(), "Cust".into()],
                ),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "Price",
        );
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let r = rng.gen_range(0..4);
            let n = rng.gen_range(0..5);
            let c = rng.gen_range(0..10);
            let y = rng.gen_range(1995..1999);
            let m = rng.gen_range(1..13);
            s.intern_record(
                &[
                    vec![
                        format!("R{r}"),
                        format!("R{r}N{n}"),
                        format!("R{r}N{n}C{c}"),
                    ],
                    vec![format!("{y}"), format!("{y}-{m:02}")],
                ],
                1,
            )
            .unwrap();
        }
        s
    }

    fn random_mds(s: &CubeSchema, rng: &mut StdRng) -> Mds {
        let dims = (0..s.num_dims())
            .map(|d| {
                let h = s.dim(DimensionId(d as u16));
                let level = rng.gen_range(0..=h.top_level());
                let vals: Vec<ValueId> = h.values_at(level).collect();
                let take = rng.gen_range(1..=vals.len().min(6));
                DimSet::new(level, vals.choose_multiple(rng, take).copied().collect())
            })
            .collect();
        Mds::new(dims)
    }

    #[test]
    fn prepared_tests_agree_with_mds_algebra() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let range = random_mds(&s, &mut rng);
            let entry = random_mds(&s, &mut rng);
            let _ = agrees_with_mds(&s, &range, &entry).unwrap();
        }
    }

    #[test]
    fn prepared_record_test_agrees() {
        let mut s = schema();
        let mut rng = StdRng::seed_from_u64(3);
        let mut records = Vec::new();
        for _ in 0..50 {
            let r = rng.gen_range(0..4);
            let n = rng.gen_range(0..5);
            let c = rng.gen_range(0..10);
            let y = rng.gen_range(1995..1999);
            let m = rng.gen_range(1..13);
            records.push(
                s.intern_record(
                    &[
                        vec![
                            format!("R{r}"),
                            format!("R{r}N{n}"),
                            format!("R{r}N{n}C{c}"),
                        ],
                        vec![format!("{y}"), format!("{y}-{m:02}")],
                    ],
                    1,
                )
                .unwrap(),
            );
        }
        for _ in 0..100 {
            let range = random_mds(&s, &mut rng);
            let p = PreparedRange::new(&s, &range).unwrap();
            for r in &records {
                assert_eq!(
                    p.contains_record(&s, r).unwrap(),
                    range.contains_record(&s, r).unwrap()
                );
            }
        }
    }
}
