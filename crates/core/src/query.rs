//! Prepared range queries.
//!
//! The naive range-query algorithm (Fig. 7) adapts the *query* MDS to the
//! entry's level for every directory entry it inspects. With large query
//! MDSs (the paper's 25%-selectivity runs reach hundreds of values per
//! dimension) that re-adaptation dominates the runtime — the effect the
//! paper itself observes: "a larger query MDS involves more expensive
//! computations of the overlap, because a large MDS consists of large sets
//! for the single dimensions."
//!
//! A `PreparedRange` hoists that work out of the traversal: per dimension
//! it precomputes, once, the query's value set adapted to **every** level at
//! or above the query level. Each entry test then degenerates to
//! parent-pointer walks and O(1) bitset probes against the precomputed sets.

use dc_common::{DcResult, Level, ValueId};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;

/// A dense bitset over the per-level index space of one hierarchy level.
#[derive(Clone, Debug)]
struct LevelBits {
    words: Vec<u64>,
}

impl LevelBits {
    fn from_values(values: &[ValueId], universe: usize) -> Self {
        let mut words = vec![0u64; universe.div_ceil(64).max(1)];
        for v in values {
            let idx = v.index() as usize;
            words[idx / 64] |= 1 << (idx % 64);
        }
        LevelBits { words }
    }

    #[inline]
    fn contains(&self, v: ValueId) -> bool {
        let idx = v.index() as usize;
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }
}

/// One dimension of a prepared range: the query's set, pre-adapted to every
/// level from the query level up to `ALL`, as O(1)-membership bitsets.
#[derive(Clone, Debug)]
pub(crate) struct PreparedDim {
    /// The query's own relevant level.
    level: Level,
    /// `bits[l - level]` = the query set adapted to level `l`.
    bits: Vec<LevelBits>,
}

impl PreparedDim {
    /// Membership in the query set adapted to `level` (≥ the query level).
    #[inline]
    fn contains_at(&self, level: Level, v: ValueId) -> bool {
        self.bits[(level - self.level) as usize].contains(v)
    }
}

/// A range MDS preprocessed for fast entry tests: every per-entry and
/// per-record test reduces to parent-pointer walks plus O(1) bit probes.
#[derive(Clone, Debug)]
pub(crate) struct PreparedRange {
    dims: Vec<PreparedDim>,
    /// Reproduce the paper's literal (unsound) Fig. 7 adaptation: when the
    /// entry is coarser than the query, lift the *query* to the entry's
    /// level and test subset there. See `DcTreeConfig::use_paper_fig7_containment`.
    paper_containment: bool,
}

impl PreparedRange {
    /// Prepares `range` against `schema`: O(size × levels) once, instead of
    /// per directory entry.
    pub(crate) fn new(schema: &CubeSchema, range: &Mds) -> DcResult<Self> {
        Self::with_mode(schema, range, false)
    }

    /// Prepares `range` with an explicit containment mode.
    pub(crate) fn with_mode(
        schema: &CubeSchema,
        range: &Mds,
        paper_containment: bool,
    ) -> DcResult<Self> {
        let mut dims = Vec::with_capacity(range.num_dims());
        for (set, h) in range.dims().zip(schema.dims()) {
            let level = set.level();
            let mut bits = vec![LevelBits::from_values(set.values(), h.num_values_at(level))];
            let mut current = set.values().to_vec();
            for l in level..h.top_level() {
                let mut up: Vec<ValueId> = current
                    .iter()
                    .map(|&v| h.parent(v).map(|p| p.expect("below ALL")))
                    .collect::<DcResult<_>>()?;
                up.sort_unstable();
                up.dedup();
                bits.push(LevelBits::from_values(&up, h.num_values_at(l + 1)));
                current = up;
            }
            dims.push(PreparedDim { level, bits });
        }
        Ok(PreparedRange {
            dims,
            paper_containment,
        })
    }

    /// `true` iff `entry` overlaps the range in every dimension — the
    /// pruning test of Fig. 7, with the query side precomputed.
    pub(crate) fn overlaps(&self, schema: &CubeSchema, entry: &Mds) -> DcResult<bool> {
        for ((p, e), h) in self.dims.iter().zip(entry.dims()).zip(schema.dims()) {
            let le = e.level();
            let hit = if le >= p.level {
                // Query adapted up to the entry's level: probe each entry
                // value against the precomputed bitset.
                e.values().iter().any(|&v| p.contains_at(le, v))
            } else {
                // Entry is finer: lift each entry value to the query level.
                let mut any = false;
                for &v in e.values() {
                    if p.contains_at(p.level, h.ancestor_at(v, p.level)?) {
                        any = true;
                        break;
                    }
                }
                any
            };
            if !hit {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// `true` iff `entry` is fully contained in the range (Definition 4
    /// domination) — the materialized-measure shortcut of Fig. 7.
    pub(crate) fn contains_entry(&self, schema: &CubeSchema, entry: &Mds) -> DcResult<bool> {
        for ((p, e), h) in self.dims.iter().zip(entry.dims()).zip(schema.dims()) {
            if e.level() > p.level {
                if !self.paper_containment {
                    return Ok(false); // coarser than the range: cannot be inside
                }
                // Paper mode (Fig. 7 literal): lift the query to the
                // entry's level and test subset there — over-approximate.
                for &v in e.values() {
                    if !p.contains_at(e.level(), v) {
                        return Ok(false);
                    }
                }
                continue;
            }
            for &v in e.values() {
                if !p.contains_at(p.level, h.ancestor_at(v, p.level)?) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// `true` iff the record is selected by the range.
    pub(crate) fn contains_record(&self, schema: &CubeSchema, record: &Record) -> DcResult<bool> {
        for ((p, &leaf), h) in self.dims.iter().zip(&record.dims).zip(schema.dims()) {
            let anc = h.ancestor_at(leaf, p.level)?;
            if !p.contains_at(p.level, anc) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Consistency helper for tests: the prepared tests must agree with the
/// direct MDS algebra.
#[cfg(test)]
pub(crate) fn agrees_with_mds(
    schema: &CubeSchema,
    range: &Mds,
    entry: &Mds,
) -> DcResult<(bool, bool)> {
    let p = PreparedRange::new(schema, range)?;
    let fast = (p.overlaps(schema, entry)?, p.contains_entry(schema, entry)?);
    let slow = (
        entry.overlaps(range, schema)?,
        entry.contained_in(range, schema)?,
    );
    assert_eq!(fast, slow, "prepared query diverges from MDS algebra");
    Ok(fast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_common::DimensionId;
    use dc_hierarchy::HierarchySchema;
    use dc_mds::DimSet;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn schema() -> CubeSchema {
        let mut s = CubeSchema::new(
            vec![
                HierarchySchema::new(
                    "Customer",
                    vec!["Region".into(), "Nation".into(), "Cust".into()],
                ),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "Price",
        );
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let r = rng.gen_range(0..4);
            let n = rng.gen_range(0..5);
            let c = rng.gen_range(0..10);
            let y = rng.gen_range(1995..1999);
            let m = rng.gen_range(1..13);
            s.intern_record(
                &[
                    vec![
                        format!("R{r}"),
                        format!("R{r}N{n}"),
                        format!("R{r}N{n}C{c}"),
                    ],
                    vec![format!("{y}"), format!("{y}-{m:02}")],
                ],
                1,
            )
            .unwrap();
        }
        s
    }

    fn random_mds(s: &CubeSchema, rng: &mut StdRng) -> Mds {
        let dims = (0..s.num_dims())
            .map(|d| {
                let h = s.dim(DimensionId(d as u16));
                let level = rng.gen_range(0..=h.top_level());
                let vals: Vec<ValueId> = h.values_at(level).collect();
                let take = rng.gen_range(1..=vals.len().min(6));
                DimSet::new(level, vals.choose_multiple(rng, take).copied().collect())
            })
            .collect();
        Mds::new(dims)
    }

    #[test]
    fn prepared_tests_agree_with_mds_algebra() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let range = random_mds(&s, &mut rng);
            let entry = random_mds(&s, &mut rng);
            let _ = agrees_with_mds(&s, &range, &entry).unwrap();
        }
    }

    #[test]
    fn prepared_record_test_agrees() {
        let mut s = schema();
        let mut rng = StdRng::seed_from_u64(3);
        let mut records = Vec::new();
        for _ in 0..50 {
            let r = rng.gen_range(0..4);
            let n = rng.gen_range(0..5);
            let c = rng.gen_range(0..10);
            let y = rng.gen_range(1995..1999);
            let m = rng.gen_range(1..13);
            records.push(
                s.intern_record(
                    &[
                        vec![
                            format!("R{r}"),
                            format!("R{r}N{n}"),
                            format!("R{r}N{n}C{c}"),
                        ],
                        vec![format!("{y}"), format!("{y}-{m:02}")],
                    ],
                    1,
                )
                .unwrap(),
            );
        }
        for _ in 0..100 {
            let range = random_mds(&s, &mut rng);
            let p = PreparedRange::new(&s, &range).unwrap();
            for r in &records {
                assert_eq!(
                    p.contains_record(&s, r).unwrap(),
                    range.contains_record(&s, r).unwrap()
                );
            }
        }
    }
}
