//! Structural invariant checker.
//!
//! Run inside tests (and available to embedders) after mutation batches:
//! verifies coverage, materialized-measure consistency, capacity accounting
//! and arena reachability. Any violation is reported as
//! [`DcError::Corrupt`] with a description of the failing node.

use std::collections::HashSet;

use dc_common::{DcError, DcResult, MeasureSummary};
use dc_mds::Mds;

use crate::node::{NodeId, NodeKind};
use crate::tree::DcTree;

impl DcTree {
    /// Verifies every structural invariant of the tree:
    ///
    /// 1. **record coverage**: every stored record is contained in the MDS
    ///    of *every* node on its path from the root (Definition 3's
    ///    coverage — checked at record granularity because lazy split
    ///    refinement may legitimately leave an inner node's MDS on a finer
    ///    level than a not-yet-refined entry below it);
    /// 2. each directory entry's MDS and summary equal the referenced
    ///    child's own (the duplication that enables Fig. 7's shortcut);
    /// 3. each node's summary equals the fold of its content (materialized
    ///    measures are exact);
    /// 4. node occupancy never exceeds `capacity × blocks`, `blocks ≥ 1`;
    /// 5. every live arena node is reachable from the root exactly once;
    /// 6. the recorded record count matches the stored records.
    pub fn check_invariants(&self) -> DcResult<()> {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut records = 0u64;
        let mut path: Vec<Mds> = Vec::new();
        self.check_node(self.root, None, &mut path, &mut seen, &mut records)?;
        if seen.len() != self.num_nodes() {
            return Err(DcError::Corrupt(format!(
                "{} live nodes but only {} reachable from the root",
                self.num_nodes(),
                seen.len()
            )));
        }
        if records != self.len() {
            return Err(DcError::Corrupt(format!(
                "tree reports {} records but stores {records}",
                self.len()
            )));
        }
        Ok(())
    }

    fn check_node(
        &self,
        id: NodeId,
        expected: Option<(&Mds, &MeasureSummary)>,
        path: &mut Vec<Mds>,
        seen: &mut HashSet<u32>,
        records: &mut u64,
    ) -> DcResult<()> {
        if !seen.insert(id.0) {
            return Err(DcError::Corrupt(format!("{id:?} reachable via two paths")));
        }
        let node = self.arena.get(id);
        let fail = |msg: String| Err(DcError::Corrupt(format!("{id:?}: {msg}")));

        if node.blocks == 0 {
            return fail("zero blocks".into());
        }
        if let Some((mds, summary)) = expected {
            if node.mds != *mds {
                return fail("node MDS differs from its parent entry's copy".into());
            }
            if node.summary != *summary {
                return fail("node summary differs from its parent entry's copy".into());
            }
        }

        path.push(node.mds.clone());
        let result = (|| {
            match &node.kind {
                NodeKind::Data(stored) => {
                    let cap = self.config().data_capacity * node.blocks as usize;
                    if stored.len() > cap {
                        return fail(format!("{} records exceed capacity {cap}", stored.len()));
                    }
                    let mut summary = MeasureSummary::empty();
                    for r in stored {
                        for (depth, mds) in path.iter().enumerate() {
                            if !mds.contains_record(self.schema(), &r.record)? {
                                return fail(format!(
                                    "record {:?} escapes the MDS at path depth {depth}",
                                    r.id
                                ));
                            }
                        }
                        summary.add(r.record.measure);
                    }
                    if summary != node.summary {
                        return fail("summary does not equal the fold of the records".into());
                    }
                    *records += stored.len() as u64;
                }
                NodeKind::Dir(entries) => {
                    let cap = self.config().dir_capacity * node.blocks as usize;
                    if entries.len() > cap {
                        return fail(format!("{} entries exceed capacity {cap}", entries.len()));
                    }
                    if entries.is_empty() {
                        return fail("directory node without entries".into());
                    }
                    let mut summary = MeasureSummary::empty();
                    for e in entries {
                        summary.merge(&e.summary);
                        self.check_node(e.child, Some((&e.mds, &e.summary)), path, seen, records)?;
                    }
                    if summary != node.summary {
                        return fail("summary does not equal the fold of the entries".into());
                    }
                }
            }
            Ok(())
        })();
        path.pop();
        result
    }
}
