//! Tree persistence: a versioned, checked binary image of a whole DC-tree —
//! configuration, concept hierarchies (with their dynamically assigned IDs),
//! node arena, and counters.
//!
//! IDs are preserved exactly across a round-trip: hierarchies are replayed
//! in per-level insertion order (which is what assigns IDs), and arena slots
//! are stored positionally, holes included, so `NodeId`s stay valid.
//!
//! All reads go through the checked [`ByteReader`], so a corrupt or
//! truncated image produces [`DcError::Corrupt`] rather than a panic.

use std::path::Path;

use dc_common::{DcError, DcResult, DimensionId, MeasureSummary, RecordId, ValueId};
use dc_hierarchy::{CubeSchema, HierarchySchema, Record};
use dc_mds::{DimSet, Mds};
use dc_storage::{BlockConfig, ByteReader, ByteWriter};

use crate::config::DcTreeConfig;
use crate::node::{Arena, DirEntry, Node, NodeId, NodeKind, StoredRecord};
use crate::tree::DcTree;

const MAGIC: &[u8; 8] = b"DCTREE01";

impl DcTree {
    /// Serializes the whole tree into a byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(1 << 16);
        for &b in MAGIC {
            w.put_u8(b);
        }
        write_config(&mut w, self.config());
        write_schema(&mut w, self.schema());

        let slots = self.arena.slots();
        w.put_u32(slots.len() as u32);
        for slot in slots {
            match slot {
                None => w.put_u8(0),
                Some(node) => {
                    w.put_u8(1);
                    write_node(&mut w, node);
                }
            }
        }
        w.put_u32(self.root.0);
        w.put_u64(self.next_record_id_for_persist());
        w.put_u64(self.len());
        w.into_vec()
    }

    /// Reconstructs a tree from a byte image produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> DcResult<DcTree> {
        let mut r = ByteReader::new(bytes);
        for &expected in MAGIC {
            if r.get_u8()? != expected {
                return Err(DcError::Corrupt("bad magic — not a DC-tree image".into()));
            }
        }
        let config = read_config(&mut r)?;
        let schema = read_schema(&mut r)?;
        let num_dims = schema.num_dims();

        let num_slots = r.get_count(1)?;
        let mut slots = Vec::with_capacity(num_slots);
        for _ in 0..num_slots {
            match r.get_u8()? {
                0 => slots.push(None),
                1 => slots.push(Some(read_node(&mut r, num_dims)?)),
                tag => return Err(DcError::Corrupt(format!("bad slot tag {tag}"))),
            }
        }
        let root = NodeId(r.get_u32()?);
        if root.index() >= slots.len() || slots[root.index()].is_none() {
            return Err(DcError::Corrupt("root points at a missing slot".into()));
        }
        // Child pointers must resolve before any traversal may follow them.
        for slot in slots.iter().flatten() {
            if let NodeKind::Dir(entries) = &slot.kind {
                for e in entries {
                    if e.child.index() >= slots.len() || slots[e.child.index()].is_none() {
                        return Err(DcError::Corrupt(format!(
                            "entry references missing child {:?}",
                            e.child
                        )));
                    }
                }
            }
        }
        let next_record_id = r.get_u64()?;
        let len = r.get_u64()?;
        r.expect_end()?;

        let tree = DcTree::from_parts(
            schema,
            config,
            Arena::from_slots(slots),
            root,
            next_record_id,
            len,
        );
        // A loaded image is untrusted input: validate before use.
        tree.check_invariants()?;
        Ok(tree)
    }

    /// Saves the tree image to a file.
    pub fn save_to(&self, path: impl AsRef<Path>) -> DcResult<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a tree image from a file.
    pub fn load_from(path: impl AsRef<Path>) -> DcResult<DcTree> {
        let bytes = std::fs::read(path)?;
        DcTree::from_bytes(&bytes)
    }
}

fn write_config(w: &mut ByteWriter, c: &DcTreeConfig) {
    w.put_u64(c.block.block_size as u64);
    w.put_u64(c.dir_capacity as u64);
    w.put_u64(c.data_capacity as u64);
    w.put_u64(c.min_fill.to_bits());
    w.put_u64(c.max_overlap.to_bits());
    w.put_u8(u8::from(c.allow_supernodes));
    w.put_u32(c.max_supernode_blocks);
    w.put_u8(u8::from(c.use_materialized_aggregates));
    w.put_u8(u8::from(c.use_paper_fig7_containment));
}

fn read_config(r: &mut ByteReader) -> DcResult<DcTreeConfig> {
    let block_size = r.get_u64()? as usize;
    if block_size == 0 {
        return Err(DcError::Corrupt("zero block size".into()));
    }
    let config = DcTreeConfig {
        block: BlockConfig::new(block_size),
        dir_capacity: r.get_u64()? as usize,
        data_capacity: r.get_u64()? as usize,
        min_fill: f64::from_bits(r.get_u64()?),
        max_overlap: f64::from_bits(r.get_u64()?),
        allow_supernodes: r.get_u8()? != 0,
        max_supernode_blocks: r.get_u32()?,
        use_materialized_aggregates: r.get_u8()? != 0,
        use_paper_fig7_containment: r.get_u8()? != 0,
    };
    config
        .validate_checked()
        .map_err(|msg| DcError::Corrupt(format!("invalid persisted config: {msg}")))?;
    Ok(config)
}

pub fn write_schema(w: &mut ByteWriter, schema: &CubeSchema) {
    w.put_u16(schema.num_dims() as u16);
    w.put_str(schema.measure_name());
    // First all hierarchy schemata, then all values — mirroring the two
    // passes of `read_schema`.
    for h in schema.dims() {
        w.put_str(h.schema().name());
        w.put_u16(h.schema().num_attributes() as u16);
        for level in (0..h.top_level()).rev() {
            w.put_str(h.schema().attribute_name(level).expect("attribute level"));
        }
    }
    for h in schema.dims() {
        // Values per level, top-1 downwards, in ID (insertion) order —
        // replaying in this order reproduces identical IDs.
        for level in (0..h.top_level()).rev() {
            w.put_u32(h.num_values_at(level) as u32);
            for id in h.values_at(level) {
                let parent = h.parent(id).expect("known id").expect("non-root");
                w.put_u32(parent.raw());
                w.put_str(h.name(id).expect("known id"));
            }
        }
    }
}

pub fn read_schema(r: &mut ByteReader) -> DcResult<CubeSchema> {
    let num_dims = r.get_u16()? as usize;
    let measure = r.get_str()?;
    let mut dim_schemas = Vec::with_capacity(num_dims);
    let mut attr_counts = Vec::with_capacity(num_dims);
    for _ in 0..num_dims {
        let name = r.get_str()?;
        let n_attrs = r.get_u16()? as usize;
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            attrs.push(r.get_str()?);
        }
        attr_counts.push(n_attrs);
        dim_schemas.push(HierarchySchema::new(name, attrs));
    }
    let mut schema = CubeSchema::new(dim_schemas, measure);
    // Second pass: replay values in ID order.
    for (d, &n_attrs) in attr_counts.iter().enumerate() {
        let dim = DimensionId(d as u16);
        for level in (0..n_attrs as u8).rev() {
            let count = r.get_count(8)? as u32;
            for expected_index in 0..count {
                let parent = ValueId::from_raw(r.get_u32()?);
                let name = r.get_str()?;
                let h = schema.dim_mut(dim);
                let id = h.insert_child(parent, &name)?;
                if id != ValueId::new(level, expected_index) {
                    return Err(DcError::Corrupt(format!(
                        "hierarchy replay produced {id} instead of v{expected_index}@L{level}"
                    )));
                }
            }
        }
    }
    Ok(schema)
}

pub(crate) fn write_mds(w: &mut ByteWriter, mds: &Mds) {
    for d in mds.dims() {
        w.put_u8(d.level());
        w.put_u32(d.len() as u32);
        for &v in d.values() {
            w.put_u32(v.raw());
        }
    }
}

pub(crate) fn read_mds(r: &mut ByteReader, num_dims: usize) -> DcResult<Mds> {
    let mut dims = Vec::with_capacity(num_dims);
    for _ in 0..num_dims {
        let level = r.get_u8()?;
        let len = r.get_count(4)?;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            let v = ValueId::from_raw(r.get_u32()?);
            if v.level() != level {
                return Err(DcError::Corrupt(format!(
                    "MDS value {v} not on relevant level {level}"
                )));
            }
            values.push(v);
        }
        dims.push(DimSet::new(level, values));
    }
    Ok(Mds::new(dims))
}

pub(crate) fn write_summary(w: &mut ByteWriter, s: &MeasureSummary) {
    w.put_i64(s.sum);
    w.put_u64(s.count);
    w.put_i64(s.min);
    w.put_i64(s.max);
}

pub(crate) fn read_summary(r: &mut ByteReader) -> DcResult<MeasureSummary> {
    Ok(MeasureSummary {
        sum: r.get_i64()?,
        count: r.get_u64()?,
        min: r.get_i64()?,
        max: r.get_i64()?,
    })
}

pub fn write_node(w: &mut ByteWriter, node: &Node) {
    write_mds(w, &node.mds);
    write_summary(w, &node.summary);
    w.put_u32(node.blocks);
    match &node.kind {
        NodeKind::Dir(entries) => {
            w.put_u8(0);
            w.put_u32(entries.len() as u32);
            for e in entries {
                write_mds(w, &e.mds);
                write_summary(w, &e.summary);
                w.put_u32(e.child.0);
            }
        }
        NodeKind::Data(records) => {
            w.put_u8(1);
            w.put_u32(records.len() as u32);
            for r in records {
                w.put_u64(r.id.0);
                for &d in &r.record.dims {
                    w.put_u32(d.raw());
                }
                w.put_i64(r.record.measure);
            }
        }
    }
}

pub fn read_node(r: &mut ByteReader, num_dims: usize) -> DcResult<Node> {
    let mds = read_mds(r, num_dims)?;
    let summary = read_summary(r)?;
    let blocks = r.get_u32()?;
    if blocks == 0 {
        return Err(DcError::Corrupt("node with zero blocks".into()));
    }
    let kind = match r.get_u8()? {
        0 => {
            let n = r.get_count(32)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let mds = read_mds(r, num_dims)?;
                let summary = read_summary(r)?;
                let child = NodeId(r.get_u32()?);
                entries.push(DirEntry {
                    mds,
                    summary,
                    child,
                });
            }
            NodeKind::Dir(entries)
        }
        1 => {
            let n = r.get_count(16)?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                let id = RecordId(r.get_u64()?);
                let mut dims = Vec::with_capacity(num_dims);
                for _ in 0..num_dims {
                    dims.push(ValueId::from_raw(r.get_u32()?));
                }
                let measure = r.get_i64()?;
                records.push(StoredRecord {
                    id,
                    record: Record::new(dims, measure),
                });
            }
            NodeKind::Data(records)
        }
        tag => return Err(DcError::Corrupt(format!("bad node kind tag {tag}"))),
    };
    Ok(Node {
        mds,
        summary,
        blocks,
        kind,
    })
}
