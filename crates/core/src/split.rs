//! The **hierarchy split** (§4.3, Fig. 6).
//!
//! A quadratic-split in the tradition of Guttman's R-tree, re-engineered
//! around the partial ordering of the concept hierarchies:
//!
//! 1. the covering MDS of every pair of members is computed and the pair
//!    with the *largest* cover becomes the two seeds;
//! 2. in every round, the member with the **greatest difference between the
//!    enlargements of the two groups in the split dimension** is assigned
//!    next — splitting along a split dimension aims at two groups with
//!    *disjoint attribute values* in that dimension;
//! 3. the member joins the group yielding the **minimum resulting overlap**
//!    between the groups; ties prefer the group "sharing as many
//!    attribute values as possible in the split dimension" (§4.3) and then
//!    fall back to the minimum sum of extensions and the minimum sum of
//!    volumes (Fig. 6's tie chain).
//!
//! Because all members of a node sit on the *same* relevant level, set
//! cardinalities alone cannot see that two values share a parent concept
//! while two others do not (e.g. {Germany, France} and {Germany, Japan} are
//! both two-element nation sets). Wherever Fig. 6's metrics tie, we
//! therefore consult the split dimension **one level up the hierarchy**:
//! the pair spanning more parent concepts is the "larger" seed pair, and a
//! member preferably joins the group with which it shares parent concepts.
//! This is exactly the partial-order information the DC-tree is built to
//! exploit (Fig. 2's discussion of partial versus total orderings).
//!
//! The function operates on *aligned* members: the caller (the DC-tree's
//! insert path) has already adapted every member MDS to the splitting node's
//! MDS — "all MDSs corresponding to the entries of a node have to be
//! comparable to each other" (§4.2).

use dc_common::DcResult;
use dc_hierarchy::CubeSchema;
use dc_mds::{DimSet, Mds};

/// Result of a hierarchy split: member indices and covering MDS per group.
#[derive(Clone, Debug)]
pub struct SplitOutcome {
    /// Indices (into the input slice) assigned to the first group.
    pub group1: Vec<usize>,
    /// Indices assigned to the second group.
    pub group2: Vec<usize>,
    /// Covering MDS of the first group.
    pub cover1: Mds,
    /// Covering MDS of the second group.
    pub cover2: Mds,
}

impl SplitOutcome {
    /// Size of the smaller group.
    pub fn min_group_len(&self) -> usize {
        self.group1.len().min(self.group2.len())
    }

    /// `overlap(G1, G2) / extension(G1, G2)` — the quantity tested against
    /// the acceptance threshold ("overlap is not too high", Fig. 5).
    /// Zero when the extension is zero (degenerate).
    pub fn overlap_ratio(&self) -> f64 {
        let ext = self.cover1.extension(&self.cover2);
        if ext == 0 {
            return 0.0;
        }
        self.cover1.overlap(&self.cover2) as f64 / ext as f64
    }
}

/// Runs the hierarchy split of Fig. 6 over aligned member MDSs.
///
/// Returns `Ok(None)` when fewer than two members exist (nothing to split).
///
/// `min_group` is Guttman's minimum-fill parameter: the hierarchy split "is
/// based on the quadratic split of [Guttman 1984]", whose assignment loop
/// force-assigns all remaining members to a group once the other group could
/// no longer reach the minimum — without this rule the greedy min-overlap
/// criterion degenerates to n−1 : 1 partitions on homogeneous members. The
/// caller still *checks* balance and overlap afterwards and rejects
/// (→ supernode) when the forced assignment spoiled the split.
pub fn hierarchy_split(
    schema: &CubeSchema,
    members: &[Mds],
    split_dim: usize,
    min_group: usize,
) -> DcResult<Option<SplitOutcome>> {
    if members.len() < 2 {
        return Ok(None);
    }

    // The split dimension one level up: used for all hierarchy-aware
    // tie-breaking. At the top level the parent view degenerates to ALL and
    // stops discriminating, which is fine.
    let h = schema
        .dims()
        .nth(split_dim)
        .expect("split dimension within schema");
    let level = members[0].dim(split_dim).level();
    let parent_level = (level + 1).min(h.top_level());
    let parent_sets: Vec<DimSet> = members
        .iter()
        .map(|m| m.dim(split_dim).adapt_to(h, parent_level))
        .collect::<DcResult<_>>()?;

    // Seed selection: the pair with the largest covering MDS — volume first,
    // then the number of distinct parent concepts spanned in the split
    // dimension, then total size; index order keeps it deterministic.
    //
    // The exhaustive pair scan is quadratic; beyond `QUADRATIC_LIMIT`
    // members (only reachable inside large supernodes) every retry would
    // cost O(n²·d), so large inputs switch to Guttman's *linear* seed
    // heuristic: a double sweep picking the member "farthest" from member
    // 0 under the same key, then the member farthest from that one.
    const QUADRATIC_LIMIT: usize = 128;
    let seed_key = |i: usize, j: usize| {
        let cover = members[i].union_aligned(&members[j]);
        let spread = parent_sets[i].union_len(&parent_sets[j]);
        (cover.volume(), spread, cover.size())
    };
    let (mut s1, mut s2) = (0usize, 1usize);
    if members.len() <= QUADRATIC_LIMIT {
        let mut best: Option<(u128, usize, usize)> = None;
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let key = seed_key(i, j);
                if best.is_none_or(|b| key > b) {
                    best = Some(key);
                    (s1, s2) = (i, j);
                }
            }
        }
    } else {
        let far_from = |origin: usize| {
            (0..members.len())
                .filter(|&j| j != origin)
                .max_by_key(|&j| seed_key(origin.min(j), origin.max(j)))
                .expect("at least two members")
        };
        s1 = far_from(0);
        s2 = far_from(s1);
        if s1 == s2 {
            s2 = usize::from(s1 == 0);
        }
        if s1 > s2 {
            std::mem::swap(&mut s1, &mut s2);
        }
    }

    let mut group1 = vec![s1];
    let mut group2 = vec![s2];
    let mut cover1 = members[s1].clone();
    let mut cover2 = members[s2].clone();
    let mut parents1 = parent_sets[s1].clone();
    let mut parents2 = parent_sets[s2].clone();

    let mut remaining: Vec<usize> = (0..members.len()).filter(|&i| i != s1 && i != s2).collect();

    let total = members.len();
    while !remaining.is_empty() {
        // Guttman's force-assignment: if one group must receive every
        // remaining member to reach the minimum fill, hand them over.
        if group2.len() + remaining.len() <= min_group.max(1) {
            for idx in remaining.drain(..) {
                group2.push(idx);
                cover2 = cover2.union_aligned(&members[idx]);
            }
            break;
        }
        if group1.len() + remaining.len() <= min_group.max(1) {
            for idx in remaining.drain(..) {
                group1.push(idx);
                cover1 = cover1.union_aligned(&members[idx]);
            }
            break;
        }
        // Symmetrically, stop a group from hoarding: once it can no longer
        // leave the other group its minimum share, route the rest there.
        if group1.len() >= total.saturating_sub(min_group.max(1)) {
            for idx in remaining.drain(..) {
                group2.push(idx);
                cover2 = cover2.union_aligned(&members[idx]);
            }
            break;
        }
        if group2.len() >= total.saturating_sub(min_group.max(1)) {
            for idx in remaining.drain(..) {
                group1.push(idx);
                cover1 = cover1.union_aligned(&members[idx]);
            }
            break;
        }
        // Decision 1 — which member next: greatest difference between the
        // enlargements of the two groups in the split dimension; the parent
        // level breaks ties among same-level singletons. Rescanning all
        // remaining members every round is quadratic, so beyond the same
        // limit as the seed scan the members are simply taken in input
        // order (Guttman's linear variant).
        let idx = if total <= QUADRATIC_LIMIT {
            let mut pick = 0usize;
            let mut pick_key = (-1i64, -1i64);
            for (pos, &idx) in remaining.iter().enumerate() {
                let m = members[idx].dim(split_dim);
                let e1 =
                    cover1.dim(split_dim).union_len(m) as i64 - cover1.dim(split_dim).len() as i64;
                let e2 =
                    cover2.dim(split_dim).union_len(m) as i64 - cover2.dim(split_dim).len() as i64;
                let p = &parent_sets[idx];
                let p1 = parents1.union_len(p) as i64 - parents1.len() as i64;
                let p2 = parents2.union_len(p) as i64 - parents2.len() as i64;
                let key = ((e1 - e2).abs(), (p1 - p2).abs());
                if key > pick_key {
                    pick_key = key;
                    pick = pos;
                }
            }
            remaining.swap_remove(pick)
        } else {
            remaining.pop().expect("non-empty remaining")
        };
        let m = &members[idx];

        // Decision 2 — which group: minimum resulting overlap between the
        // groups; ties prefer the group sharing more parent concepts with
        // the member in the split dimension (§4.3), then the minimum sum of
        // extensions (covered volume after insertion), the minimum volume,
        // and finally the smaller group.
        let grown1 = cover1.union_aligned(m);
        let grown2 = cover2.union_aligned(m);
        let shared1 = parents1.intersection_len(&parent_sets[idx]);
        let shared2 = parents2.intersection_len(&parent_sets[idx]);
        let key1 = (
            grown1.overlap(&cover2),
            usize::MAX - shared1,
            grown1.volume().saturating_add(cover2.volume()),
            cover1.volume(),
            group1.len(),
        );
        let key2 = (
            cover1.overlap(&grown2),
            usize::MAX - shared2,
            cover1.volume().saturating_add(grown2.volume()),
            cover2.volume(),
            group2.len(),
        );
        if key1 <= key2 {
            group1.push(idx);
            cover1 = grown1;
            parents1.union_with(&parent_sets[idx]);
        } else {
            group2.push(idx);
            cover2 = grown2;
            parents2.union_with(&parent_sets[idx]);
        }
    }

    Ok(Some(SplitOutcome {
        group1,
        group2,
        cover1,
        cover2,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_common::{DimensionId, ValueId};
    use dc_hierarchy::HierarchySchema;

    /// Two dimensions: Customer (Region→Nation), Time (Year→Month).
    fn schema() -> CubeSchema {
        let mut s = CubeSchema::new(
            vec![
                HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "Price",
        );
        for (r, n) in [
            ("Europe", "Germany"),
            ("Europe", "France"),
            ("Europe", "Netherlands"),
            ("Asia", "Japan"),
            ("Asia", "China"),
            ("Asia", "India"),
        ] {
            for m in ["01", "02"] {
                s.intern_record(&[vec![r, n], vec!["1996", m]], 1).unwrap();
            }
        }
        s
    }

    fn nation(s: &CubeSchema, name: &str) -> ValueId {
        let h = s.dim(DimensionId(0));
        h.values_at(0)
            .find(|&v| h.name(v).unwrap() == name)
            .unwrap()
    }

    fn year(s: &CubeSchema) -> ValueId {
        s.dim(DimensionId(1)).lookup_path(&["1996"]).unwrap()
    }

    fn member(s: &CubeSchema, nations: &[&str]) -> Mds {
        Mds::new(vec![
            DimSet::new(0, nations.iter().map(|n| nation(s, n)).collect()),
            DimSet::new(1, vec![year(s)]),
        ])
    }

    #[test]
    fn splits_disjoint_clusters_cleanly() {
        let s = schema();
        // Three European and three Asian members — the hierarchy-aware
        // tie-breaking must keep the continents together.
        let members = vec![
            member(&s, &["Germany"]),
            member(&s, &["France"]),
            member(&s, &["Netherlands"]),
            member(&s, &["Japan"]),
            member(&s, &["China"]),
            member(&s, &["India"]),
        ];
        let out = hierarchy_split(&s, &members, 0, 2).unwrap().unwrap();
        assert_eq!(out.group1.len() + out.group2.len(), 6);
        assert_eq!(
            out.cover1.overlap(&out.cover2),
            0,
            "groups must be disjoint"
        );
        assert_eq!(out.overlap_ratio(), 0.0);
        let europe: Vec<usize> = vec![0, 1, 2];
        let in1 = europe.iter().all(|i| out.group1.contains(i));
        let in2 = europe.iter().all(|i| out.group2.contains(i));
        assert!(
            in1 || in2,
            "the European cluster must stay together: {out:?}"
        );
        assert_eq!(out.min_group_len(), 3);
    }

    #[test]
    fn seeds_are_the_pair_with_largest_cover() {
        let s = schema();
        // Germany/Japan span two regions (largest cover one level up);
        // France sits next to Germany. France must join Germany's group.
        let members = vec![
            member(&s, &["Germany"]),
            member(&s, &["France"]),
            member(&s, &["Japan"]),
        ];
        let out = hierarchy_split(&s, &members, 0, 1).unwrap().unwrap();
        let g_with_f = (out.group1.contains(&0) && out.group1.contains(&1))
            || (out.group2.contains(&0) && out.group2.contains(&1));
        assert!(g_with_f, "{out:?}");
    }

    #[test]
    fn overlapping_members_produce_valid_covers() {
        let s = schema();
        let members = vec![
            member(&s, &["Germany", "Japan"]),
            member(&s, &["Germany", "China"]),
            member(&s, &["France"]),
            member(&s, &["India"]),
        ];
        let out = hierarchy_split(&s, &members, 0, 2).unwrap().unwrap();
        assert_eq!(out.group1.len() + out.group2.len(), 4);
        for (&i, cover) in out
            .group1
            .iter()
            .map(|i| (i, &out.cover1))
            .chain(out.group2.iter().map(|i| (i, &out.cover2)))
        {
            assert!(members[i].contained_in(cover, &s).unwrap());
        }
    }

    #[test]
    fn single_member_cannot_split() {
        let s = schema();
        assert!(hierarchy_split(&s, &[member(&s, &["Germany"])], 0, 1)
            .unwrap()
            .is_none());
        assert!(hierarchy_split(&s, &[], 0, 1).unwrap().is_none());
    }

    #[test]
    fn two_members_become_the_two_groups() {
        let s = schema();
        let members = vec![member(&s, &["Germany"]), member(&s, &["Japan"])];
        let out = hierarchy_split(&s, &members, 0, 2).unwrap().unwrap();
        assert_eq!(out.group1, vec![0]);
        assert_eq!(out.group2, vec![1]);
        assert_eq!(out.cover1, members[0]);
        assert_eq!(out.cover2, members[1]);
    }

    #[test]
    fn region_level_members_split_disjointly() {
        let s = schema();
        let h = s.dim(DimensionId(0));
        let europe = h.lookup_path(&["Europe"]).unwrap();
        let asia = h.lookup_path(&["Asia"]).unwrap();
        let mk = |r: ValueId| {
            Mds::new(vec![
                DimSet::new(1, vec![r]),
                DimSet::new(1, vec![year(&s)]),
            ])
        };
        let members = vec![mk(europe), mk(asia), mk(europe), mk(asia)];
        let out = hierarchy_split(&s, &members, 0, 2).unwrap().unwrap();
        assert_eq!(out.cover1.overlap(&out.cover2), 0);
        assert_eq!(out.min_group_len(), 2);
    }
}
