//! Tree statistics — in particular the per-level node sizes the paper plots
//! in Fig. 13 (average entries of the two highest levels below the root).

use crate::node::NodeKind;
use crate::tree::DcTree;

/// Aggregate dead-space comparison between MDS and MBR descriptions of the
/// same data nodes (the paper's Fig. 3 argument made quantitative).
///
/// For every data node and every dimension, the node's records occupy a set
/// of leaf-level IDs. The MDS lists exactly those (no dead space at its
/// relevant level); an MBR over the artificial total order spans the whole
/// `[min, max]` ID interval. `mbr_cells / mds_cells` per dimension measures
/// the dead space a totally ordered description would cover.
#[derive(Clone, PartialEq, Debug)]
pub struct DeadSpaceReport {
    /// Number of data nodes inspected.
    pub data_nodes: usize,
    /// Σ over nodes and dims of occupied leaf IDs (the MDS description).
    pub mds_cells: u64,
    /// Σ over nodes and dims of `max − min + 1` leaf IDs (the MBR
    /// description).
    pub mbr_cells: u64,
}

impl DeadSpaceReport {
    /// `mbr_cells / mds_cells` — how many times more leaf cells the interval
    /// description covers; 1.0 means no dead space.
    pub fn blowup(&self) -> f64 {
        if self.mds_cells == 0 {
            1.0
        } else {
            self.mbr_cells as f64 / self.mds_cells as f64
        }
    }
}

/// Aggregate statistics of one tree depth (0 = root).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LevelStat {
    /// Depth below the root (0 = root itself).
    pub depth: usize,
    /// Number of nodes on this depth.
    pub nodes: usize,
    /// Number of supernodes (blocks > 1) among them.
    pub supernodes: usize,
    /// Average number of entries / records per node — the y-axis of Fig. 13.
    pub avg_entries: f64,
    /// Average number of blocks per node.
    pub avg_blocks: f64,
}

/// Whole-tree statistics.
#[derive(Clone, PartialEq, Debug)]
pub struct TreeStats {
    /// Tree height (number of levels).
    pub height: usize,
    /// Stored records.
    pub records: u64,
    /// Total directory nodes.
    pub dir_nodes: usize,
    /// Total data nodes.
    pub data_nodes: usize,
    /// Total supernodes (of either kind).
    pub supernodes: usize,
    /// Per-depth statistics, root first.
    pub levels: Vec<LevelStat>,
    /// Sum of `size(MDS)` over all node MDSs — a proxy for the directory's
    /// variable-size storage cost.
    pub total_mds_size: usize,
}

impl DcTree {
    /// Computes per-level and whole-tree statistics by breadth-first walk.
    pub fn stats(&self) -> TreeStats {
        let mut levels: Vec<LevelStat> = Vec::new();
        let mut dir_nodes = 0;
        let mut data_nodes = 0;
        let mut supernodes = 0;
        let mut total_mds_size = 0;

        let mut frontier = vec![self.root];
        let mut depth = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            let mut entries_sum = 0usize;
            let mut blocks_sum = 0u64;
            let mut supers = 0usize;
            for &id in &frontier {
                let node = self.arena.get(id);
                entries_sum += node.len();
                blocks_sum += node.blocks as u64;
                total_mds_size += node.mds.size();
                if node.is_supernode() {
                    supers += 1;
                }
                match &node.kind {
                    NodeKind::Dir(entries) => {
                        dir_nodes += 1;
                        next.extend(entries.iter().map(|e| e.child));
                    }
                    NodeKind::Data(_) => data_nodes += 1,
                }
            }
            supernodes += supers;
            levels.push(LevelStat {
                depth,
                nodes: frontier.len(),
                supernodes: supers,
                avg_entries: entries_sum as f64 / frontier.len() as f64,
                avg_blocks: blocks_sum as f64 / frontier.len() as f64,
            });
            frontier = next;
            depth += 1;
        }

        TreeStats {
            height: levels.len(),
            records: self.len(),
            dir_nodes,
            data_nodes,
            supernodes,
            levels,
            total_mds_size,
        }
    }

    /// Computes the [`DeadSpaceReport`] over all data nodes: per node and
    /// dimension, the distinct leaf IDs its records occupy (MDS view) versus
    /// the enclosing `[min, max]` ID interval (MBR view).
    pub fn dead_space_report(&self) -> DeadSpaceReport {
        let mut report = DeadSpaceReport {
            data_nodes: 0,
            mds_cells: 0,
            mbr_cells: 0,
        };
        for (_, node) in self.arena.iter() {
            let NodeKind::Data(records) = &node.kind else {
                continue;
            };
            if records.is_empty() {
                continue;
            }
            report.data_nodes += 1;
            for d in 0..node.mds.num_dims() {
                let mut ids: Vec<u32> = records.iter().map(|r| r.record.dims[d].index()).collect();
                ids.sort_unstable();
                ids.dedup();
                report.mds_cells += ids.len() as u64;
                report.mbr_cells += (ids[ids.len() - 1] - ids[0] + 1) as u64;
            }
        }
        report
    }
}
