//! The **paged** (disk-resident) DC-tree: nodes live behind a
//! [`NodeStore`], loaded and decoded on demand.
//!
//! The paper's trees are disk-based; the in-memory [`DcTree`](crate::DcTree)
//! models their I/O with logical counters, while this implementation makes
//! it physical: every node visit goes through the store's buffer pool, node
//! capacity and supernode growth follow the same rules as the in-memory
//! tree, and the whole store — schema, nodes, counters — round-trips
//! through [`flush`](PagedDcTree::flush)/[`open`](DiskDcTree::open).
//!
//! The algorithms (choose-subtree, hierarchy split with lazy refinement,
//! supernodes, materialized range queries and group-bys, deletion with
//! condensation) are the same as the in-memory tree's; the differential
//! test suite in `tests/disk_tree.rs` holds the two implementations to
//! identical answers on identical workloads.
//!
//! [`PagedDcTree`] is generic over its [`NodeStore`] so the same tree runs
//! over the single-threaded [`ChainStore`] (the classic [`DiskDcTree`]) and
//! over `dc-oocore`'s concurrent, scan-resistant pool with compressed node
//! pages. Queries take `&self`; only structural mutation (insert, delete,
//! flush) needs `&mut self`, which is what lets the out-of-core engine
//! serve concurrent readers under an `RwLock`.
//!
//! Chain layout (for chain-based stores): page 1 heads the metadata chain
//! (magic, root, counters, schema); every node occupies a chain of pages
//! (`[next: u64][len: u32][payload]` per page, like the paged checkpoint
//! store). Entry `child` handles store the head page of the child's chain.

use std::path::Path;

use dc_common::{
    AggregateOp, DcError, DcResult, DimensionId, Level, Measure, MeasureSummary, RecordId, ValueId,
};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;
use dc_storage::{ByteReader, ByteWriter, PageId, PoolStats};

use crate::config::DcTreeConfig;
use crate::node::{DirEntry, Node, NodeId, NodeKind, StoredRecord};
use crate::query::PreparedRange;
use crate::split::{hierarchy_split, SplitOutcome};
use crate::store::{ChainStore, NodeStore};

const META_MAGIC: u64 = 0x4443_4449_534b_3032; // "DCDISK02"

fn pid(id: NodeId) -> PageId {
    PageId(id.raw() as u64)
}

fn nid(page: PageId) -> NodeId {
    debug_assert!(
        page.0 <= u32::MAX as u64,
        "page id exceeds node-handle width"
    );
    NodeId::from_raw(page.0 as u32)
}

/// A DC-tree whose nodes live in a [`NodeStore`].
#[derive(Debug)]
pub struct PagedDcTree<S: NodeStore> {
    schema: CubeSchema,
    config: DcTreeConfig,
    store: S,
    root: PageId,
    next_record_id: u64,
    len: u64,
    nodes: u64,
}

/// The classic single-threaded disk tree: a [`PagedDcTree`] over the
/// uncompressed [`ChainStore`].
pub type DiskDcTree = PagedDcTree<ChainStore>;

impl DiskDcTree {
    /// Creates a fresh disk tree at `path` (truncating any existing file).
    /// `frames` bounds the buffer pool.
    pub fn create(
        path: impl AsRef<Path>,
        schema: CubeSchema,
        config: DcTreeConfig,
        frames: usize,
    ) -> DcResult<Self> {
        config.validate();
        let store = ChainStore::create(path, config.block, frames)?;
        Self::create_in(store, schema, config)
    }

    /// Opens an existing disk tree.
    pub fn open(path: impl AsRef<Path>, config: DcTreeConfig, frames: usize) -> DcResult<Self> {
        let store = ChainStore::open(path, config.block, frames)?;
        Self::open_in(store, config)
    }

    /// Buffer-pool counters: real page hits, misses, write-backs.
    pub fn pool_stats(&self) -> PoolStats {
        self.store.pool_stats()
    }
}

impl<S: NodeStore> PagedDcTree<S> {
    /// Creates a fresh tree inside `store` (which must be empty).
    pub fn create_in(store: S, schema: CubeSchema, config: DcTreeConfig) -> DcResult<Self> {
        config.validate();
        let mut tree = PagedDcTree {
            schema,
            config,
            store,
            root: PageId(0), // placeholder until the root is allocated
            next_record_id: 0,
            len: 0,
            nodes: 0,
        };
        let root_node = Node::new_data(Mds::all(&tree.schema));
        tree.root = tree.alloc_node(&root_node)?;
        tree.flush()?;
        Ok(tree)
    }

    /// Opens the tree persisted in `store`.
    pub fn open_in(store: S, config: DcTreeConfig) -> DcResult<Self> {
        config.validate();
        let bytes = store.read_meta()?;
        let mut r = ByteReader::new(&bytes);
        if r.get_u64()? != META_MAGIC {
            return Err(DcError::Corrupt("not a disk DC-tree".into()));
        }
        let root = r.get_u64()?;
        let next_record_id = r.get_u64()?;
        let len = r.get_u64()?;
        let nodes = r.get_u64()?;
        let schema = crate::persist::read_schema(&mut r)?;
        r.expect_end()?;
        Ok(PagedDcTree {
            schema,
            config,
            store,
            root: PageId(root),
            next_record_id,
            len,
            nodes,
        })
    }

    /// The cube schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The configuration.
    pub fn config(&self) -> &DcTreeConfig {
        &self.config
    }

    /// The backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Stored records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live nodes (directory + data), maintained across alloc/free.
    pub fn num_nodes(&self) -> u64 {
        self.nodes
    }

    /// Tree height (number of node levels).
    pub fn height(&self) -> DcResult<usize> {
        let mut h = 1;
        let mut page = self.root;
        loop {
            let node = self.load_node(page)?;
            match &node.kind {
                NodeKind::Dir(entries) => {
                    h += 1;
                    page = pid(entries[0].child);
                }
                NodeKind::Data(_) => return Ok(h),
            }
        }
    }

    /// The materialized total, read from the root.
    pub fn total_summary(&self) -> DcResult<MeasureSummary> {
        Ok(self.load_node(self.root)?.summary)
    }

    /// Interns attribute paths into the schema without storing a record —
    /// the catalog-replay hook that keeps shard `ValueId` spaces aligned
    /// (see `SchemaCatalog` in dc-serve).
    pub fn intern_paths<T: AsRef<str>>(&mut self, paths: &[Vec<T>]) -> DcResult<Vec<ValueId>> {
        Ok(self.schema.intern_record(paths, 0)?.dims)
    }

    // ------------------------------------------------------------------
    // Node I/O through the store
    // ------------------------------------------------------------------

    fn load_node(&self, page: PageId) -> DcResult<Node> {
        self.store.load_node(page, self.schema.num_dims())
    }

    fn store_node(&self, page: PageId, node: &Node) -> DcResult<()> {
        self.store.store_node(page, node)
    }

    fn alloc_node(&mut self, node: &Node) -> DcResult<PageId> {
        let page = self.store.alloc_node(node)?;
        self.nodes += 1;
        Ok(page)
    }

    fn free_node(&mut self, page: PageId) -> DcResult<()> {
        self.store.free_node(page)?;
        self.nodes = self.nodes.saturating_sub(1);
        Ok(())
    }

    /// Persists metadata + schema and flushes the store to disk.
    pub fn flush(&mut self) -> DcResult<()> {
        let mut w = ByteWriter::new();
        w.put_u64(META_MAGIC);
        w.put_u64(self.root.0);
        w.put_u64(self.next_record_id);
        w.put_u64(self.len);
        w.put_u64(self.nodes);
        crate::persist::write_schema(&mut w, &self.schema);
        self.store.write_meta(&w.into_vec())?;
        self.store.sync()
    }

    // ------------------------------------------------------------------
    // Insertion — the same algorithm as the in-memory tree, via load/store
    // ------------------------------------------------------------------

    /// Inserts a raw record (paths are interned dynamically).
    pub fn insert_raw<T: AsRef<str>>(
        &mut self,
        paths: &[Vec<T>],
        measure: Measure,
    ) -> DcResult<RecordId> {
        let record = self.schema.intern_record(paths, measure)?;
        self.insert(record)
    }

    /// Inserts a pre-interned record.
    pub fn insert(&mut self, record: Record) -> DcResult<RecordId> {
        self.schema.validate_record(&record)?;
        let id = RecordId(self.next_record_id);
        self.next_record_id += 1;
        let stored = StoredRecord { id, record };
        if let Some(sibling) = self.insert_rec(self.root, &stored)? {
            self.grow_root(sibling)?;
        }
        self.len += 1;
        Ok(id)
    }

    /// Installs a new directory root over the old root and `sibling`.
    fn grow_root(&mut self, sibling: PageId) -> DcResult<()> {
        let old_root = self.load_node(self.root)?;
        let new_node = self.load_node(sibling)?;
        let mds = old_root.mds.cover(&new_node.mds, &self.schema)?;
        let entries = vec![
            DirEntry {
                mds: old_root.mds.clone(),
                summary: old_root.summary,
                child: nid(self.root),
            },
            DirEntry {
                mds: new_node.mds.clone(),
                summary: new_node.summary,
                child: nid(sibling),
            },
        ];
        let root = Node::new_dir(mds, entries);
        self.root = self.alloc_node(&root)?;
        Ok(())
    }

    fn insert_rec(&mut self, page: PageId, stored: &StoredRecord) -> DcResult<Option<PageId>> {
        let mut node = self.load_node(page)?;
        match &mut node.kind {
            NodeKind::Data(records) => {
                node.summary.add(stored.record.measure);
                node.mds
                    .extend_to_cover_record(&self.schema, &stored.record)?;
                records.push(stored.clone());
                let over = records.len() > self.config.data_capacity * node.blocks as usize;
                self.store_node(page, &node)?;
                if over {
                    return self.split_node(page);
                }
                Ok(None)
            }
            NodeKind::Dir(_) => {
                let choice = choose_subtree(&self.schema, &node, &stored.record)?;
                node.summary.add(stored.record.measure);
                node.mds
                    .extend_to_cover_record(&self.schema, &stored.record)?;
                let child = {
                    let entries = node.entries_mut();
                    entries[choice].summary.add(stored.record.measure);
                    entries[choice]
                        .mds
                        .extend_to_cover_record(&self.schema, &stored.record)?;
                    entries[choice].child
                };
                self.store_node(page, &node)?;

                if let Some(sibling) = self.insert_rec(pid(child), stored)? {
                    let refreshed = self.load_node(pid(child))?;
                    let new_node = self.load_node(sibling)?;
                    let mut node = self.load_node(page)?;
                    {
                        let entries = node.entries_mut();
                        let e = entries
                            .iter_mut()
                            .find(|e| e.child == child)
                            .expect("split child still referenced");
                        e.mds = refreshed.mds.clone();
                        e.summary = refreshed.summary;
                        entries.push(DirEntry {
                            mds: new_node.mds.clone(),
                            summary: new_node.summary,
                            child: nid(sibling),
                        });
                    }
                    let over = node.len() > self.config.dir_capacity * node.blocks as usize;
                    self.store_node(page, &node)?;
                    if over {
                        return self.split_node(page);
                    }
                }
                Ok(None)
            }
        }
    }

    /// The split of §4.2 with the same calibration as the in-memory tree
    /// (level descent, lazy refinement, disjoint acceptance, geometric
    /// supernode growth, block bound).
    fn split_node(&mut self, page: PageId) -> DcResult<Option<PageId>> {
        let node = self.load_node(page)?;
        let (member_mds, children): (Vec<Mds>, Option<Vec<NodeId>>) = match &node.kind {
            NodeKind::Dir(entries) => (
                entries.iter().map(|e| e.mds.clone()).collect(),
                Some(entries.iter().map(|e| e.child).collect()),
            ),
            NodeKind::Data(records) => (
                records
                    .iter()
                    .map(|r| Mds::from_record(&r.record))
                    .collect(),
                None,
            ),
        };
        let node_levels = node.mds.levels();
        let node_dim_lens: Vec<usize> = (0..node.mds.num_dims())
            .map(|d| node.mds.dim(d).len())
            .collect();
        let num_members = member_mds.len();
        let min_group = self.config.min_group(num_members);

        let mut dims: Vec<usize> = (0..node_levels.len()).collect();
        dims.sort_by_key(|&d| std::cmp::Reverse(node_levels[d]));
        let align_levels: Vec<u8> = (0..node_levels.len())
            .map(|dim| {
                member_mds
                    .iter()
                    .map(|m| m.dim(dim).level())
                    .max()
                    .unwrap_or(node_levels[dim])
                    .max(node_levels[dim])
            })
            .collect();

        let mut best_rejected: Option<(SplitOutcome, f64)> = None;
        for &d in &dims {
            let start = if node_dim_lens[d] < 2 && node_levels[d] > 0 {
                node_levels[d] - 1
            } else {
                node_levels[d]
            };
            for level in (0..=start).rev() {
                let mut target = align_levels.clone();
                target[d] = level;
                let mut analysis = Vec::with_capacity(num_members);
                let mut refinements: Vec<(usize, dc_mds::DimSet)> = Vec::new();
                for (i, m) in member_mds.iter().enumerate() {
                    let mut a = m.adapt_to_levels(&self.schema, &{
                        let mut t = target.clone();
                        t[d] = t[d].max(m.dim(d).level());
                        t
                    })?;
                    if m.dim(d).level() > level {
                        let refined = match &children {
                            Some(kids) => self.subtree_dimset_at(pid(kids[i]), d, level)?,
                            None => unreachable!("records sit on leaf level 0"),
                        };
                        *a.dim_mut(d) = refined.clone();
                        refinements.push((i, refined));
                    }
                    analysis.push(a);
                }
                let Some(outcome) = hierarchy_split(&self.schema, &analysis, d, min_group)? else {
                    break;
                };
                let ratio = outcome.overlap_ratio();
                let balanced = outcome.min_group_len() >= min_group
                    || (ratio == 0.0 && outcome.min_group_len() >= 2);
                let low_overlap = ratio <= self.config.max_overlap;
                if balanced && low_overlap {
                    // Commit lazy refinement to children and this node's
                    // entries before partitioning.
                    if !refinements.is_empty() {
                        let mut node = self.load_node(page)?;
                        for (i, refined) in &refinements {
                            let child = children.as_ref().expect("dir refinement")[*i];
                            let mut child_node = self.load_node(pid(child))?;
                            *child_node.mds.dim_mut(d) = refined.clone();
                            self.store_node(pid(child), &child_node)?;
                            *node.entries_mut()[*i].mds.dim_mut(d) = refined.clone();
                        }
                        self.store_node(page, &node)?;
                    }
                    return Ok(Some(self.apply_split(page, outcome)?));
                }
                let better = match &best_rejected {
                    None => true,
                    Some((prev, prev_ratio)) => {
                        (outcome.min_group_len(), -ratio) > (prev.min_group_len(), -prev_ratio)
                    }
                };
                if better && outcome.min_group_len() >= 1 && refinements.is_empty() {
                    best_rejected = Some((outcome, ratio));
                }
            }
        }

        let may_grow = self.config.allow_supernodes
            && self.load_node(page)?.blocks < self.config.max_supernode_blocks;
        if may_grow {
            let mut node = self.load_node(page)?;
            node.blocks += (node.blocks / 4).max(1);
            self.store_node(page, &node)?;
            Ok(None)
        } else {
            let outcome = match best_rejected {
                Some((outcome, _)) => outcome,
                None => {
                    let mid = num_members / 2;
                    let group1: Vec<usize> = (0..mid).collect();
                    let group2: Vec<usize> = (mid..num_members).collect();
                    let cover_of = |idx: &[usize]| -> DcResult<Mds> {
                        let mut cover: Option<Mds> = None;
                        for &i in idx {
                            cover = Some(match cover {
                                None => member_mds[i].clone(),
                                Some(c) => c.cover(&member_mds[i], &self.schema)?,
                            });
                        }
                        Ok(cover.expect("non-empty group"))
                    };
                    SplitOutcome {
                        cover1: cover_of(&group1)?,
                        cover2: cover_of(&group2)?,
                        group1,
                        group2,
                    }
                }
            };
            Ok(Some(self.apply_split(page, outcome)?))
        }
    }

    fn apply_split(&mut self, page: PageId, outcome: SplitOutcome) -> DcResult<PageId> {
        let SplitOutcome {
            group1,
            group2,
            cover1,
            cover2,
        } = outcome;
        let node = self.load_node(page)?;
        let (mut keep, sibling) = match node.kind {
            NodeKind::Data(records) => {
                let mut in1 = vec![false; records.len()];
                for &i in &group1 {
                    in1[i] = true;
                }
                let _ = &group2;
                let (mut part1, mut part2) = (Vec::new(), Vec::new());
                for (i, r) in records.into_iter().enumerate() {
                    if in1[i] {
                        part1.push(r);
                    } else {
                        part2.push(r);
                    }
                }
                let summary1: MeasureSummary = part1.iter().map(|r| r.record.measure).collect();
                let summary2: MeasureSummary = part2.iter().map(|r| r.record.measure).collect();
                let mut keep = Node::new_data(cover1);
                keep.summary = summary1;
                *keep.records_mut() = part1;
                let mut sib = Node::new_data(cover2);
                sib.summary = summary2;
                *sib.records_mut() = part2;
                (keep, sib)
            }
            NodeKind::Dir(entries) => {
                let mut in1 = vec![false; entries.len()];
                for &i in &group1 {
                    in1[i] = true;
                }
                let (mut part1, mut part2) = (Vec::new(), Vec::new());
                for (i, e) in entries.into_iter().enumerate() {
                    if in1[i] {
                        part1.push(e);
                    } else {
                        part2.push(e);
                    }
                }
                let keep = Node::new_dir(cover1, part1);
                let sib = Node::new_dir(cover2, part2);
                (keep, sib)
            }
        };
        let shrink = |n: &Node, cfg: &DcTreeConfig| -> u32 {
            let cap = if n.is_data() {
                cfg.data_capacity
            } else {
                cfg.dir_capacity
            };
            (n.len().div_ceil(cap)).max(1) as u32
        };
        keep.blocks = shrink(&keep, &self.config);
        let mut sibling = sibling;
        sibling.blocks = shrink(&sibling, &self.config);
        self.store_node(page, &keep)?;
        let sib_page = self.alloc_node(&sibling)?;
        Ok(sib_page)
    }

    fn subtree_dimset_at(&self, page: PageId, d: usize, level: u8) -> DcResult<dc_mds::DimSet> {
        let node = self.load_node(page)?;
        if node.mds.dim(d).level() <= level {
            let h = self.schema.dims().nth(d).expect("dimension in schema");
            return node.mds.dim(d).adapt_to(h, level);
        }
        match &node.kind {
            NodeKind::Data(records) => {
                let h = self.schema.dims().nth(d).expect("dimension in schema");
                let mut values = Vec::with_capacity(records.len());
                for r in records {
                    values.push(h.ancestor_at(r.record.dims[d], level)?);
                }
                values.sort_unstable();
                values.dedup();
                Ok(dc_mds::DimSet::new(level, values))
            }
            NodeKind::Dir(entries) => {
                let parts: Vec<(dc_mds::DimSet, Option<NodeId>)> = entries
                    .iter()
                    .map(|e| {
                        if e.mds.dim(d).level() <= level {
                            Ok((e.mds.dim(d).clone(), None))
                        } else {
                            Ok((dc_mds::DimSet::new(level, Vec::new()), Some(e.child)))
                        }
                    })
                    .collect::<DcResult<_>>()?;
                let mut acc: Option<dc_mds::DimSet> = None;
                for (set, descend) in parts {
                    let part = match descend {
                        None => {
                            let h = self.schema.dims().nth(d).expect("dimension in schema");
                            set.adapt_to(h, level)?
                        }
                        Some(child) => self.subtree_dimset_at(pid(child), d, level)?,
                    };
                    acc = Some(match acc {
                        None => part,
                        Some(mut a) => {
                            a.union_with(&part);
                            a
                        }
                    });
                }
                acc.ok_or_else(|| DcError::Corrupt("directory node without entries".into()))
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries — `&self`, so concurrent readers can share the tree
    // ------------------------------------------------------------------

    /// Prepares a range against this tree's schema and containment mode.
    pub fn prepare_range(&self, range: &Mds) -> DcResult<PreparedRange> {
        PreparedRange::with_mode(&self.schema, range, self.config.use_paper_fig7_containment)
    }

    /// Range query with one aggregation operator.
    pub fn range_query(&self, range: &Mds, op: AggregateOp) -> DcResult<Option<f64>> {
        Ok(self.range_summary(range)?.eval(op))
    }

    /// Range query returning the mergeable summary (Fig. 7 with the
    /// materialized shortcut, pages loaded through the buffer pool).
    pub fn range_summary(&self, range: &Mds) -> DcResult<MeasureSummary> {
        if range.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: range.num_dims(),
            });
        }
        let prepared = self.prepare_range(range)?;
        self.range_summary_prepared(&prepared)
    }

    /// Range query from an already-[prepared](Self::prepare_range) range.
    /// Same cross-schema contract as the in-memory tree: the range may have
    /// been prepared against any schema assigning the same `ValueId`s.
    pub fn range_summary_prepared(&self, prepared: &PreparedRange) -> DcResult<MeasureSummary> {
        if prepared.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: prepared.num_dims(),
            });
        }
        let mut acc = MeasureSummary::empty();
        self.query_rec(self.root, prepared, &mut acc)?;
        Ok(acc)
    }

    fn query_rec(
        &self,
        page: PageId,
        range: &PreparedRange,
        acc: &mut MeasureSummary,
    ) -> DcResult<()> {
        let node = self.load_node(page)?;
        match &node.kind {
            NodeKind::Data(records) => {
                for r in records {
                    if range.contains_record(&self.schema, &r.record)? {
                        acc.add(r.record.measure);
                    }
                }
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    if !range.overlaps(&self.schema, &e.mds)? {
                        continue;
                    }
                    if self.config.use_materialized_aggregates
                        && range.contains_entry(&self.schema, &e.mds)?
                    {
                        acc.merge(&e.summary);
                    } else {
                        self.query_rec(pid(e.child), range, acc)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Groups the records inside `filter` by their ancestor on
    /// `(group_dim, group_level)` — same single-traversal algorithm (and
    /// materialized shortcut) as the in-memory tree.
    pub fn group_by(
        &self,
        group_dim: DimensionId,
        group_level: Level,
        filter: &Mds,
    ) -> DcResult<Vec<(ValueId, MeasureSummary)>> {
        if filter.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: filter.num_dims(),
            });
        }
        let prepared = PreparedRange::new(&self.schema, filter)?;
        self.group_by_prepared(group_dim, group_level, &prepared)
    }

    /// [`Self::group_by`] from an already-prepared filter.
    pub fn group_by_prepared(
        &self,
        group_dim: DimensionId,
        group_level: Level,
        prepared: &PreparedRange,
    ) -> DcResult<Vec<(ValueId, MeasureSummary)>> {
        if prepared.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: prepared.num_dims(),
            });
        }
        let h = self.schema.dim(group_dim);
        if group_level > h.top_level() {
            return Err(DcError::BadLevel {
                dim: group_dim,
                id: h.all(),
                requested: group_level,
            });
        }
        let mut groups: Vec<MeasureSummary> =
            vec![MeasureSummary::empty(); h.num_values_at(group_level)];
        self.group_rec(self.root, prepared, group_dim, group_level, &mut groups)?;
        Ok(groups
            .into_iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (ValueId::new(group_level, i as u32), s))
            .collect())
    }

    fn group_rec(
        &self,
        page: PageId,
        filter: &PreparedRange,
        group_dim: DimensionId,
        group_level: Level,
        groups: &mut [MeasureSummary],
    ) -> DcResult<()> {
        let node = self.load_node(page)?;
        let h = self.schema.dim(group_dim);
        match &node.kind {
            NodeKind::Data(records) => {
                for r in records {
                    if filter.contains_record(&self.schema, &r.record)? {
                        let key =
                            h.ancestor_at(r.record.dims[group_dim.as_usize()], group_level)?;
                        groups[key.index() as usize].add(r.record.measure);
                    }
                }
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    if !filter.overlaps(&self.schema, &e.mds)? {
                        continue;
                    }
                    // The materialized shortcut applies when the entry lies
                    // fully inside the filter AND maps to a single group
                    // value (its group-dim set collapses to one ancestor).
                    let single_group = self.single_group_of(&e.mds, group_dim, group_level)?;
                    if self.config.use_materialized_aggregates
                        && filter.contains_entry(&self.schema, &e.mds)?
                    {
                        if let Some(key) = single_group {
                            groups[key.index() as usize].merge(&e.summary);
                            continue;
                        }
                    }
                    self.group_rec(pid(e.child), filter, group_dim, group_level, groups)?;
                }
            }
        }
        Ok(())
    }

    /// If every value of `mds`'s group dimension lies below one single value
    /// on `group_level`, returns that value.
    fn single_group_of(
        &self,
        mds: &Mds,
        group_dim: DimensionId,
        group_level: Level,
    ) -> DcResult<Option<ValueId>> {
        let h = self.schema.dim(group_dim);
        let set = mds.dim(group_dim.as_usize());
        if set.level() > group_level {
            return Ok(None); // coarser than the grouping level: spans many
        }
        let mut single: Option<ValueId> = None;
        for &v in set.values() {
            let anc = h.ancestor_at(v, group_level)?;
            match single {
                None => single = Some(anc),
                Some(prev) if prev == anc => {}
                Some(_) => return Ok(None),
            }
        }
        Ok(single)
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Deletes one record equal to `record`; `false` when absent.
    pub fn delete(&mut self, record: &Record) -> DcResult<bool> {
        self.schema.validate_record(record)?;
        let mut orphans = Vec::new();
        if !self.delete_rec(self.root, record, &mut orphans)? {
            return Ok(false);
        }
        self.len -= 1;
        // Collapse single-entry roots.
        loop {
            let node = self.load_node(self.root)?;
            match &node.kind {
                NodeKind::Dir(entries) if entries.len() == 1 => {
                    let child = pid(entries[0].child);
                    self.free_node(self.root)?;
                    self.root = child;
                }
                NodeKind::Dir(entries) if entries.is_empty() => {
                    let fresh = Node::new_data(Mds::all(&self.schema));
                    self.store_node(self.root, &fresh)?;
                    break;
                }
                _ => break,
            }
        }
        for orphan in orphans {
            // Re-insert without consuming new record ids.
            if let Some(sibling) = self.insert_rec(self.root, &orphan)? {
                self.grow_root(sibling)?;
            }
        }
        Ok(true)
    }

    fn delete_rec(
        &mut self,
        page: PageId,
        record: &Record,
        orphans: &mut Vec<StoredRecord>,
    ) -> DcResult<bool> {
        let mut node = self.load_node(page)?;
        match &mut node.kind {
            NodeKind::Data(records) => {
                let Some(pos) = records.iter().position(|r| &r.record == record) else {
                    return Ok(false);
                };
                records.remove(pos);
                recompute_node(&self.schema, &mut node)?;
                self.store_node(page, &node)?;
                Ok(true)
            }
            NodeKind::Dir(_) => {
                let candidates: Vec<(usize, NodeId)> = node
                    .entries()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| match e.mds.contains_record(&self.schema, record) {
                        Ok(true) => Some(Ok((i, e.child))),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    })
                    .collect::<DcResult<_>>()?;
                for (i, child) in candidates {
                    if !self.delete_rec(pid(child), record, orphans)? {
                        continue;
                    }
                    let child_node = self.load_node(pid(child))?;
                    let min_fill_len = self.config.min_group(if child_node.is_data() {
                        self.config.data_capacity
                    } else {
                        self.config.dir_capacity
                    });
                    let mut node = self.load_node(page)?;
                    if child_node.len() < min_fill_len {
                        self.collect_subtree(pid(child), orphans)?;
                        node.entries_mut().remove(i);
                    } else {
                        let cap = if child_node.is_data() {
                            self.config.data_capacity
                        } else {
                            self.config.dir_capacity
                        };
                        let needed = (child_node.len().div_ceil(cap)).max(1) as u32;
                        if needed < child_node.blocks {
                            let mut shrunk = child_node;
                            shrunk.blocks = needed;
                            self.store_node(pid(child), &shrunk)?;
                        }
                        let refreshed = self.load_node(pid(child))?;
                        node.entries_mut()[i] = DirEntry {
                            mds: refreshed.mds.clone(),
                            summary: refreshed.summary,
                            child,
                        };
                    }
                    recompute_node(&self.schema, &mut node)?;
                    self.store_node(page, &node)?;
                    return Ok(true);
                }
                Ok(false)
            }
        }
    }

    fn collect_subtree(&mut self, page: PageId, out: &mut Vec<StoredRecord>) -> DcResult<()> {
        let node = self.load_node(page)?;
        match node.kind {
            NodeKind::Data(mut records) => out.append(&mut records),
            NodeKind::Dir(entries) => {
                for e in entries {
                    self.collect_subtree(pid(e.child), out)?;
                }
            }
        }
        self.free_node(page)
    }
}

/// Choose-subtree identical to the in-memory tree's criterion.
fn choose_subtree(schema: &CubeSchema, node: &Node, record: &Record) -> DcResult<usize> {
    let entries = node.entries();
    debug_assert!(!entries.is_empty());
    let mut best_covering: Option<(u128, usize, usize)> = None;
    for (i, e) in entries.iter().enumerate() {
        if e.mds.contains_record(schema, record)? {
            let key = (e.mds.volume(), e.mds.size(), i);
            if best_covering.is_none_or(|b| key < b) {
                best_covering = Some(key);
            }
        }
    }
    if let Some((_, _, i)) = best_covering {
        return Ok(i);
    }
    let d = schema.num_dims();
    let mut holds = vec![false; entries.len() * d];
    let mut holders_per_dim = vec![0usize; d];
    for (i, e) in entries.iter().enumerate() {
        for (dim, h) in schema.dims().enumerate() {
            let anc = h.ancestor_at(record.dims[dim], e.mds.dim(dim).level())?;
            if e.mds.dim(dim).contains_value(anc) {
                holds[i * d + dim] = true;
                holders_per_dim[dim] += 1;
            }
        }
    }
    let mut best: Option<(usize, u128, u128, usize, usize)> = None;
    for (i, e) in entries.iter().enumerate() {
        let mut overlap_penalty = 0usize;
        for dim in 0..d {
            if !holds[i * d + dim] {
                overlap_penalty += holders_per_dim[dim];
            }
        }
        let enlargement = e.mds.enlargement_for_record(schema, record)?;
        let key = (
            overlap_penalty,
            enlargement,
            e.mds.volume(),
            e.mds.size(),
            i,
        );
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    Ok(best.expect("non-empty entries").4)
}

/// Recompute summary + minimal MDS after a deletion (same as in-memory).
fn recompute_node(schema: &CubeSchema, node: &mut Node) -> DcResult<()> {
    let levels = node.mds.levels();
    let (mds, summary) = match &node.kind {
        NodeKind::Data(records) => {
            if records.is_empty() {
                (node.mds.clone(), MeasureSummary::empty())
            } else {
                let mut mds: Option<Mds> = None;
                let mut summary = MeasureSummary::empty();
                for r in records {
                    summary.add(r.record.measure);
                    let p = Mds::from_record(&r.record).adapt_to_levels(schema, &levels)?;
                    mds = Some(match mds {
                        None => p,
                        Some(m) => m.union_aligned(&p),
                    });
                }
                (mds.expect("non-empty records"), summary)
            }
        }
        NodeKind::Dir(entries) => {
            let levels: Vec<u8> = (0..node.mds.num_dims())
                .map(|dim| {
                    entries
                        .iter()
                        .map(|e| e.mds.dim(dim).level())
                        .max()
                        .unwrap_or(levels[dim])
                })
                .collect();
            let mut mds: Option<Mds> = None;
            let mut summary = MeasureSummary::empty();
            for e in entries {
                summary.merge(&e.summary);
                let p = e.mds.adapt_to_levels(schema, &levels)?;
                mds = Some(match mds {
                    None => p,
                    Some(m) => m.union_aligned(&p),
                });
            }
            (mds.unwrap_or_else(|| node.mds.clone()), summary)
        }
    };
    node.mds = mds;
    node.summary = summary;
    Ok(())
}
