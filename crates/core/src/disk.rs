//! A **disk-resident** DC-tree: nodes live as page chains in a
//! [`PagedFile`] behind a [`BufferPool`], loaded and decoded on demand.
//!
//! The paper's trees are disk-based; the in-memory [`DcTree`](crate::DcTree)
//! models their I/O with logical counters, while this implementation makes
//! it physical: every node visit goes through the pool (hits and misses
//! observable via [`DiskDcTree::pool_stats`]), node capacity and supernode
//! growth follow the same rules as the in-memory tree, and the whole store
//! — schema, nodes, counters — round-trips through
//! [`flush`](DiskDcTree::flush)/[`open`](DiskDcTree::open).
//!
//! The algorithms (choose-subtree, hierarchy split with lazy refinement,
//! supernodes, materialized range queries, deletion with condensation) are
//! the same as the in-memory tree's; the differential test suite in
//! `tests/disk_tree.rs` holds the two implementations to identical answers
//! on identical workloads.
//!
//! Layout: page 1 is the metadata page (magic, root chain head, schema
//! chain head, record counters); every node occupies a chain of pages
//! (`[next: u64][len: u32][payload]` per page, like the paged checkpoint
//! store). Entry `child` handles store the head page of the child's chain.
//!
//! [`PagedFile`]: dc_storage::PagedFile
//! [`BufferPool`]: dc_storage::BufferPool

use std::path::Path;

use dc_common::{AggregateOp, DcError, DcResult, Measure, MeasureSummary, RecordId};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;
use dc_storage::{BufferPool, ByteReader, ByteWriter, PageId, PagedFile, PoolStats};

use crate::config::DcTreeConfig;
use crate::node::{DirEntry, Node, NodeId, NodeKind, StoredRecord};
use crate::persist::{read_node, write_node};
use crate::query::PreparedRange;
use crate::split::{hierarchy_split, SplitOutcome};

const META_MAGIC: u64 = 0x4443_4449_534b_3031; // "DCDISK01"
const CHAIN_NONE: u64 = u64::MAX;
const PAGE_HEADER: usize = 8 + 4;

fn pid(id: NodeId) -> PageId {
    PageId(id.0 as u64)
}

fn nid(page: PageId) -> NodeId {
    debug_assert!(
        page.0 <= u32::MAX as u64,
        "page id exceeds node-handle width"
    );
    NodeId(page.0 as u32)
}

/// The disk-resident DC-tree.
#[derive(Debug)]
pub struct DiskDcTree {
    schema: CubeSchema,
    config: DcTreeConfig,
    pool: BufferPool,
    meta: PageId,
    root: PageId,
    next_record_id: u64,
    len: u64,
    schema_dirty: bool,
}

impl DiskDcTree {
    /// Creates a fresh disk tree at `path` (truncating any existing file).
    /// `frames` bounds the buffer pool.
    pub fn create(
        path: impl AsRef<Path>,
        schema: CubeSchema,
        config: DcTreeConfig,
        frames: usize,
    ) -> DcResult<Self> {
        config.validate();
        let file = PagedFile::create(path, config.block)?;
        let mut pool = BufferPool::new(file, frames);
        let meta = pool.alloc()?;
        debug_assert_eq!(meta.0, 1, "metadata occupies page 1");
        let mut tree = DiskDcTree {
            schema,
            config,
            pool,
            meta,
            root: PageId(0), // placeholder until the root is allocated
            next_record_id: 0,
            len: 0,
            schema_dirty: true,
        };
        let root_node = Node::new_data(Mds::all(&tree.schema));
        tree.root = tree.alloc_node(&root_node)?;
        tree.flush()?;
        Ok(tree)
    }

    /// Opens an existing disk tree.
    pub fn open(path: impl AsRef<Path>, config: DcTreeConfig, frames: usize) -> DcResult<Self> {
        let file = PagedFile::open(path, config.block)?;
        let mut pool = BufferPool::new(file, frames);
        let meta = PageId(1);
        let (magic, root, schema_head, next_record_id, len) = pool.with_page(meta, |d| {
            (
                u64::from_le_bytes(d[0..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(d[8..16].try_into().expect("8 bytes")),
                u64::from_le_bytes(d[16..24].try_into().expect("8 bytes")),
                u64::from_le_bytes(d[24..32].try_into().expect("8 bytes")),
                u64::from_le_bytes(d[32..40].try_into().expect("8 bytes")),
            )
        })?;
        if magic != META_MAGIC {
            return Err(DcError::Corrupt("not a disk DC-tree".into()));
        }
        let schema_bytes = read_chain(&mut pool, PageId(schema_head))?;
        let mut r = ByteReader::new(&schema_bytes);
        let schema = crate::persist::read_schema(&mut r)?;
        r.expect_end()?;
        Ok(DiskDcTree {
            schema,
            config,
            pool,
            meta,
            root: PageId(root),
            next_record_id,
            len,
            schema_dirty: false,
        })
    }

    /// The cube schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The configuration.
    pub fn config(&self) -> &DcTreeConfig {
        &self.config
    }

    /// Stored records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buffer-pool counters: real page hits, misses, write-backs.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Tree height (number of node levels).
    pub fn height(&mut self) -> DcResult<usize> {
        let mut h = 1;
        let mut page = self.root;
        loop {
            let node = self.load_node(page)?;
            match &node.kind {
                NodeKind::Dir(entries) => {
                    h += 1;
                    page = pid(entries[0].child);
                }
                NodeKind::Data(_) => return Ok(h),
            }
        }
    }

    /// The materialized total, read from the root.
    pub fn total_summary(&mut self) -> DcResult<MeasureSummary> {
        Ok(self.load_node(self.root)?.summary)
    }

    // ------------------------------------------------------------------
    // Chain I/O
    // ------------------------------------------------------------------

    fn payload_per_page(&self) -> usize {
        self.config.block.block_size - PAGE_HEADER
    }

    fn load_node(&mut self, page: PageId) -> DcResult<Node> {
        let bytes = read_chain(&mut self.pool, page)?;
        let mut r = ByteReader::new(&bytes);
        let node = read_node(&mut r, self.schema.num_dims())?;
        r.expect_end()?;
        Ok(node)
    }

    /// Rewrites the chain headed at `head` with the node's encoding,
    /// reusing pages and freeing/allocating as the size changed.
    fn store_node(&mut self, head: PageId, node: &Node) -> DcResult<()> {
        let mut w = ByteWriter::new();
        write_node(&mut w, node);
        let payload = self.payload_per_page();
        write_chain(&mut self.pool, head, &w.into_vec(), payload)
    }

    fn alloc_node(&mut self, node: &Node) -> DcResult<PageId> {
        let head = self.pool.alloc()?;
        // Fresh pages are zeroed; initialize an empty chain terminator
        // before the real store.
        self.pool.with_page_mut(head, |d| {
            d[0..8].copy_from_slice(&CHAIN_NONE.to_le_bytes());
            d[8..12].copy_from_slice(&0u32.to_le_bytes());
        })?;
        self.store_node(head, node)?;
        Ok(head)
    }

    fn free_node(&mut self, head: PageId) -> DcResult<()> {
        free_chain(&mut self.pool, head)
    }

    /// Persists metadata + schema and flushes the pool to disk.
    pub fn flush(&mut self) -> DcResult<()> {
        // Schema chain: rewritten when the hierarchies grew.
        let schema_head = {
            let mut w = ByteWriter::new();
            crate::persist::write_schema(&mut w, &self.schema);
            let bytes = w.into_vec();
            let existing = self.pool.with_page(self.meta, |d| {
                u64::from_le_bytes(d[16..24].try_into().expect("8 bytes"))
            })?;
            let head = if existing == 0 || existing == CHAIN_NONE {
                let h = self.pool.alloc()?;
                self.pool.with_page_mut(h, |d| {
                    d[0..8].copy_from_slice(&CHAIN_NONE.to_le_bytes());
                    d[8..12].copy_from_slice(&0u32.to_le_bytes());
                })?;
                h
            } else {
                PageId(existing)
            };
            if self.schema_dirty || existing == 0 || existing == CHAIN_NONE {
                let payload = self.payload_per_page();
                write_chain(&mut self.pool, head, &bytes, payload)?;
                self.schema_dirty = false;
            }
            head
        };
        let (root, next, len) = (self.root.0, self.next_record_id, self.len);
        self.pool.with_page_mut(self.meta, |d| {
            d[0..8].copy_from_slice(&META_MAGIC.to_le_bytes());
            d[8..16].copy_from_slice(&root.to_le_bytes());
            d[16..24].copy_from_slice(&schema_head.0.to_le_bytes());
            d[24..32].copy_from_slice(&next.to_le_bytes());
            d[32..40].copy_from_slice(&len.to_le_bytes());
        })?;
        self.pool.flush()
    }

    // ------------------------------------------------------------------
    // Insertion — the same algorithm as the in-memory tree, via load/store
    // ------------------------------------------------------------------

    /// Inserts a raw record (paths are interned dynamically).
    pub fn insert_raw<S: AsRef<str>>(
        &mut self,
        paths: &[Vec<S>],
        measure: Measure,
    ) -> DcResult<RecordId> {
        let record = self.schema.intern_record(paths, measure)?;
        self.schema_dirty = true;
        self.insert(record)
    }

    /// Inserts a pre-interned record.
    pub fn insert(&mut self, record: Record) -> DcResult<RecordId> {
        self.schema.validate_record(&record)?;
        let id = RecordId(self.next_record_id);
        self.next_record_id += 1;
        let stored = StoredRecord { id, record };
        if let Some(sibling) = self.insert_rec(self.root, &stored)? {
            let old_root = self.load_node(self.root)?;
            let new_node = self.load_node(sibling)?;
            let mds = old_root.mds.cover(&new_node.mds, &self.schema)?;
            let entries = vec![
                DirEntry {
                    mds: old_root.mds.clone(),
                    summary: old_root.summary,
                    child: nid(self.root),
                },
                DirEntry {
                    mds: new_node.mds.clone(),
                    summary: new_node.summary,
                    child: nid(sibling),
                },
            ];
            let root = Node::new_dir(mds, entries);
            self.root = self.alloc_node(&root)?;
        }
        self.len += 1;
        Ok(id)
    }

    fn insert_rec(&mut self, page: PageId, stored: &StoredRecord) -> DcResult<Option<PageId>> {
        let mut node = self.load_node(page)?;
        match &mut node.kind {
            NodeKind::Data(records) => {
                node.summary.add(stored.record.measure);
                node.mds
                    .extend_to_cover_record(&self.schema, &stored.record)?;
                records.push(stored.clone());
                let over = records.len() > self.config.data_capacity * node.blocks as usize;
                self.store_node(page, &node)?;
                if over {
                    return self.split_node(page);
                }
                Ok(None)
            }
            NodeKind::Dir(_) => {
                let choice = choose_subtree(&self.schema, &node, &stored.record)?;
                node.summary.add(stored.record.measure);
                node.mds
                    .extend_to_cover_record(&self.schema, &stored.record)?;
                let child = {
                    let entries = node.entries_mut();
                    entries[choice].summary.add(stored.record.measure);
                    entries[choice]
                        .mds
                        .extend_to_cover_record(&self.schema, &stored.record)?;
                    entries[choice].child
                };
                self.store_node(page, &node)?;

                if let Some(sibling) = self.insert_rec(pid(child), stored)? {
                    let refreshed = self.load_node(pid(child))?;
                    let new_node = self.load_node(sibling)?;
                    let mut node = self.load_node(page)?;
                    {
                        let entries = node.entries_mut();
                        let e = entries
                            .iter_mut()
                            .find(|e| e.child == child)
                            .expect("split child still referenced");
                        e.mds = refreshed.mds.clone();
                        e.summary = refreshed.summary;
                        entries.push(DirEntry {
                            mds: new_node.mds.clone(),
                            summary: new_node.summary,
                            child: nid(sibling),
                        });
                    }
                    let over = node.len() > self.config.dir_capacity * node.blocks as usize;
                    self.store_node(page, &node)?;
                    if over {
                        return self.split_node(page);
                    }
                }
                Ok(None)
            }
        }
    }

    /// The split of §4.2 with the same calibration as the in-memory tree
    /// (level descent, lazy refinement, disjoint acceptance, geometric
    /// supernode growth, block bound).
    fn split_node(&mut self, page: PageId) -> DcResult<Option<PageId>> {
        let node = self.load_node(page)?;
        let (member_mds, children): (Vec<Mds>, Option<Vec<NodeId>>) = match &node.kind {
            NodeKind::Dir(entries) => (
                entries.iter().map(|e| e.mds.clone()).collect(),
                Some(entries.iter().map(|e| e.child).collect()),
            ),
            NodeKind::Data(records) => (
                records
                    .iter()
                    .map(|r| Mds::from_record(&r.record))
                    .collect(),
                None,
            ),
        };
        let node_levels = node.mds.levels();
        let node_dim_lens: Vec<usize> = (0..node.mds.num_dims())
            .map(|d| node.mds.dim(d).len())
            .collect();
        let num_members = member_mds.len();
        let min_group = self.config.min_group(num_members);

        let mut dims: Vec<usize> = (0..node_levels.len()).collect();
        dims.sort_by_key(|&d| std::cmp::Reverse(node_levels[d]));
        let align_levels: Vec<u8> = (0..node_levels.len())
            .map(|dim| {
                member_mds
                    .iter()
                    .map(|m| m.dim(dim).level())
                    .max()
                    .unwrap_or(node_levels[dim])
                    .max(node_levels[dim])
            })
            .collect();

        let mut best_rejected: Option<(SplitOutcome, f64)> = None;
        for &d in &dims {
            let start = if node_dim_lens[d] < 2 && node_levels[d] > 0 {
                node_levels[d] - 1
            } else {
                node_levels[d]
            };
            for level in (0..=start).rev() {
                let mut target = align_levels.clone();
                target[d] = level;
                let mut analysis = Vec::with_capacity(num_members);
                let mut refinements: Vec<(usize, dc_mds::DimSet)> = Vec::new();
                for (i, m) in member_mds.iter().enumerate() {
                    let mut a = m.adapt_to_levels(&self.schema, &{
                        let mut t = target.clone();
                        t[d] = t[d].max(m.dim(d).level());
                        t
                    })?;
                    if m.dim(d).level() > level {
                        let refined = match &children {
                            Some(kids) => self.subtree_dimset_at(pid(kids[i]), d, level)?,
                            None => unreachable!("records sit on leaf level 0"),
                        };
                        *a.dim_mut(d) = refined.clone();
                        refinements.push((i, refined));
                    }
                    analysis.push(a);
                }
                let Some(outcome) = hierarchy_split(&self.schema, &analysis, d, min_group)? else {
                    break;
                };
                let ratio = outcome.overlap_ratio();
                let balanced = outcome.min_group_len() >= min_group
                    || (ratio == 0.0 && outcome.min_group_len() >= 2);
                let low_overlap = ratio <= self.config.max_overlap;
                if balanced && low_overlap {
                    // Commit lazy refinement to children and this node's
                    // entries before partitioning.
                    if !refinements.is_empty() {
                        let mut node = self.load_node(page)?;
                        for (i, refined) in &refinements {
                            let child = children.as_ref().expect("dir refinement")[*i];
                            let mut child_node = self.load_node(pid(child))?;
                            *child_node.mds.dim_mut(d) = refined.clone();
                            self.store_node(pid(child), &child_node)?;
                            *node.entries_mut()[*i].mds.dim_mut(d) = refined.clone();
                        }
                        self.store_node(page, &node)?;
                    }
                    return Ok(Some(self.apply_split(page, outcome)?));
                }
                let better = match &best_rejected {
                    None => true,
                    Some((prev, prev_ratio)) => {
                        (outcome.min_group_len(), -ratio) > (prev.min_group_len(), -prev_ratio)
                    }
                };
                if better && outcome.min_group_len() >= 1 && refinements.is_empty() {
                    best_rejected = Some((outcome, ratio));
                }
            }
        }

        let may_grow = self.config.allow_supernodes
            && self.load_node(page)?.blocks < self.config.max_supernode_blocks;
        if may_grow {
            let mut node = self.load_node(page)?;
            node.blocks += (node.blocks / 4).max(1);
            self.store_node(page, &node)?;
            Ok(None)
        } else {
            let outcome = match best_rejected {
                Some((outcome, _)) => outcome,
                None => {
                    let mid = num_members / 2;
                    let group1: Vec<usize> = (0..mid).collect();
                    let group2: Vec<usize> = (mid..num_members).collect();
                    let cover_of = |idx: &[usize]| -> DcResult<Mds> {
                        let mut cover: Option<Mds> = None;
                        for &i in idx {
                            cover = Some(match cover {
                                None => member_mds[i].clone(),
                                Some(c) => c.cover(&member_mds[i], &self.schema)?,
                            });
                        }
                        Ok(cover.expect("non-empty group"))
                    };
                    SplitOutcome {
                        cover1: cover_of(&group1)?,
                        cover2: cover_of(&group2)?,
                        group1,
                        group2,
                    }
                }
            };
            Ok(Some(self.apply_split(page, outcome)?))
        }
    }

    fn apply_split(&mut self, page: PageId, outcome: SplitOutcome) -> DcResult<PageId> {
        let SplitOutcome {
            group1,
            group2,
            cover1,
            cover2,
        } = outcome;
        let node = self.load_node(page)?;
        let (mut keep, sibling) = match node.kind {
            NodeKind::Data(records) => {
                let mut in1 = vec![false; records.len()];
                for &i in &group1 {
                    in1[i] = true;
                }
                let _ = &group2;
                let (mut part1, mut part2) = (Vec::new(), Vec::new());
                for (i, r) in records.into_iter().enumerate() {
                    if in1[i] {
                        part1.push(r);
                    } else {
                        part2.push(r);
                    }
                }
                let summary1: MeasureSummary = part1.iter().map(|r| r.record.measure).collect();
                let summary2: MeasureSummary = part2.iter().map(|r| r.record.measure).collect();
                let mut keep = Node::new_data(cover1);
                keep.summary = summary1;
                *keep.records_mut() = part1;
                let mut sib = Node::new_data(cover2);
                sib.summary = summary2;
                *sib.records_mut() = part2;
                (keep, sib)
            }
            NodeKind::Dir(entries) => {
                let mut in1 = vec![false; entries.len()];
                for &i in &group1 {
                    in1[i] = true;
                }
                let (mut part1, mut part2) = (Vec::new(), Vec::new());
                for (i, e) in entries.into_iter().enumerate() {
                    if in1[i] {
                        part1.push(e);
                    } else {
                        part2.push(e);
                    }
                }
                let keep = Node::new_dir(cover1, part1);
                let sib = Node::new_dir(cover2, part2);
                (keep, sib)
            }
        };
        let shrink = |n: &Node, cfg: &DcTreeConfig| -> u32 {
            let cap = if n.is_data() {
                cfg.data_capacity
            } else {
                cfg.dir_capacity
            };
            (n.len().div_ceil(cap)).max(1) as u32
        };
        keep.blocks = shrink(&keep, &self.config);
        let mut sibling = sibling;
        sibling.blocks = shrink(&sibling, &self.config);
        self.store_node(page, &keep)?;
        let sib_page = self.alloc_node(&sibling)?;
        Ok(sib_page)
    }

    fn subtree_dimset_at(&mut self, page: PageId, d: usize, level: u8) -> DcResult<dc_mds::DimSet> {
        let node = self.load_node(page)?;
        if node.mds.dim(d).level() <= level {
            let h = self.schema.dims().nth(d).expect("dimension in schema");
            return node.mds.dim(d).adapt_to(h, level);
        }
        match &node.kind {
            NodeKind::Data(records) => {
                let h = self.schema.dims().nth(d).expect("dimension in schema");
                let mut values = Vec::with_capacity(records.len());
                for r in records {
                    values.push(h.ancestor_at(r.record.dims[d], level)?);
                }
                values.sort_unstable();
                values.dedup();
                Ok(dc_mds::DimSet::new(level, values))
            }
            NodeKind::Dir(entries) => {
                let parts: Vec<(dc_mds::DimSet, Option<NodeId>)> = entries
                    .iter()
                    .map(|e| {
                        if e.mds.dim(d).level() <= level {
                            Ok((e.mds.dim(d).clone(), None))
                        } else {
                            Ok((dc_mds::DimSet::new(level, Vec::new()), Some(e.child)))
                        }
                    })
                    .collect::<DcResult<_>>()?;
                let mut acc: Option<dc_mds::DimSet> = None;
                for (set, descend) in parts {
                    let part = match descend {
                        None => {
                            let h = self.schema.dims().nth(d).expect("dimension in schema");
                            set.adapt_to(h, level)?
                        }
                        Some(child) => self.subtree_dimset_at(pid(child), d, level)?,
                    };
                    acc = Some(match acc {
                        None => part,
                        Some(mut a) => {
                            a.union_with(&part);
                            a
                        }
                    });
                }
                acc.ok_or_else(|| DcError::Corrupt("directory node without entries".into()))
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Range query with one aggregation operator.
    pub fn range_query(&mut self, range: &Mds, op: AggregateOp) -> DcResult<Option<f64>> {
        Ok(self.range_summary(range)?.eval(op))
    }

    /// Range query returning the mergeable summary (Fig. 7 with the
    /// materialized shortcut, pages loaded through the buffer pool).
    pub fn range_summary(&mut self, range: &Mds) -> DcResult<MeasureSummary> {
        if range.num_dims() != self.schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: self.schema.num_dims(),
                got: range.num_dims(),
            });
        }
        let prepared =
            PreparedRange::with_mode(&self.schema, range, self.config.use_paper_fig7_containment)?;
        let mut acc = MeasureSummary::empty();
        self.query_rec(self.root, &prepared, &mut acc)?;
        Ok(acc)
    }

    fn query_rec(
        &mut self,
        page: PageId,
        range: &PreparedRange,
        acc: &mut MeasureSummary,
    ) -> DcResult<()> {
        let node = self.load_node(page)?;
        match &node.kind {
            NodeKind::Data(records) => {
                for r in records {
                    if range.contains_record(&self.schema, &r.record)? {
                        acc.add(r.record.measure);
                    }
                }
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    if !range.overlaps(&self.schema, &e.mds)? {
                        continue;
                    }
                    if self.config.use_materialized_aggregates
                        && range.contains_entry(&self.schema, &e.mds)?
                    {
                        acc.merge(&e.summary);
                    } else {
                        self.query_rec(pid(e.child), range, acc)?;
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Deletes one record equal to `record`; `false` when absent.
    pub fn delete(&mut self, record: &Record) -> DcResult<bool> {
        self.schema.validate_record(record)?;
        let mut orphans = Vec::new();
        if !self.delete_rec(self.root, record, &mut orphans)? {
            return Ok(false);
        }
        self.len -= 1;
        // Collapse single-entry roots.
        loop {
            let node = self.load_node(self.root)?;
            match &node.kind {
                NodeKind::Dir(entries) if entries.len() == 1 => {
                    let child = pid(entries[0].child);
                    self.free_node(self.root)?;
                    self.root = child;
                }
                NodeKind::Dir(entries) if entries.is_empty() => {
                    let fresh = Node::new_data(Mds::all(&self.schema));
                    self.store_node(self.root, &fresh)?;
                    break;
                }
                _ => break,
            }
        }
        for orphan in orphans {
            // Re-insert without consuming new record ids.
            if let Some(sibling) = self.insert_rec(self.root, &orphan)? {
                let old_root = self.load_node(self.root)?;
                let new_node = self.load_node(sibling)?;
                let mds = old_root.mds.cover(&new_node.mds, &self.schema)?;
                let entries = vec![
                    DirEntry {
                        mds: old_root.mds.clone(),
                        summary: old_root.summary,
                        child: nid(self.root),
                    },
                    DirEntry {
                        mds: new_node.mds.clone(),
                        summary: new_node.summary,
                        child: nid(sibling),
                    },
                ];
                let root = Node::new_dir(mds, entries);
                self.root = self.alloc_node(&root)?;
            }
        }
        Ok(true)
    }

    fn delete_rec(
        &mut self,
        page: PageId,
        record: &Record,
        orphans: &mut Vec<StoredRecord>,
    ) -> DcResult<bool> {
        let mut node = self.load_node(page)?;
        match &mut node.kind {
            NodeKind::Data(records) => {
                let Some(pos) = records.iter().position(|r| &r.record == record) else {
                    return Ok(false);
                };
                records.remove(pos);
                recompute_node(&self.schema, &mut node)?;
                self.store_node(page, &node)?;
                Ok(true)
            }
            NodeKind::Dir(_) => {
                let candidates: Vec<(usize, NodeId)> = node
                    .entries()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| match e.mds.contains_record(&self.schema, record) {
                        Ok(true) => Some(Ok((i, e.child))),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    })
                    .collect::<DcResult<_>>()?;
                for (i, child) in candidates {
                    if !self.delete_rec(pid(child), record, orphans)? {
                        continue;
                    }
                    let child_node = self.load_node(pid(child))?;
                    let min_fill_len = self.config.min_group(if child_node.is_data() {
                        self.config.data_capacity
                    } else {
                        self.config.dir_capacity
                    });
                    let mut node = self.load_node(page)?;
                    if child_node.len() < min_fill_len {
                        self.collect_subtree(pid(child), orphans)?;
                        node.entries_mut().remove(i);
                    } else {
                        let cap = if child_node.is_data() {
                            self.config.data_capacity
                        } else {
                            self.config.dir_capacity
                        };
                        let needed = (child_node.len().div_ceil(cap)).max(1) as u32;
                        if needed < child_node.blocks {
                            let mut shrunk = child_node;
                            shrunk.blocks = needed;
                            self.store_node(pid(child), &shrunk)?;
                        }
                        let refreshed = self.load_node(pid(child))?;
                        node.entries_mut()[i] = DirEntry {
                            mds: refreshed.mds.clone(),
                            summary: refreshed.summary,
                            child,
                        };
                    }
                    recompute_node(&self.schema, &mut node)?;
                    self.store_node(page, &node)?;
                    return Ok(true);
                }
                Ok(false)
            }
        }
    }

    fn collect_subtree(&mut self, page: PageId, out: &mut Vec<StoredRecord>) -> DcResult<()> {
        let node = self.load_node(page)?;
        match node.kind {
            NodeKind::Data(mut records) => out.append(&mut records),
            NodeKind::Dir(entries) => {
                for e in entries {
                    self.collect_subtree(pid(e.child), out)?;
                }
            }
        }
        self.free_node(page)
    }
}

/// Choose-subtree identical to the in-memory tree's criterion.
fn choose_subtree(schema: &CubeSchema, node: &Node, record: &Record) -> DcResult<usize> {
    let entries = node.entries();
    debug_assert!(!entries.is_empty());
    let mut best_covering: Option<(u128, usize, usize)> = None;
    for (i, e) in entries.iter().enumerate() {
        if e.mds.contains_record(schema, record)? {
            let key = (e.mds.volume(), e.mds.size(), i);
            if best_covering.is_none_or(|b| key < b) {
                best_covering = Some(key);
            }
        }
    }
    if let Some((_, _, i)) = best_covering {
        return Ok(i);
    }
    let d = schema.num_dims();
    let mut holds = vec![false; entries.len() * d];
    let mut holders_per_dim = vec![0usize; d];
    for (i, e) in entries.iter().enumerate() {
        for (dim, h) in schema.dims().enumerate() {
            let anc = h.ancestor_at(record.dims[dim], e.mds.dim(dim).level())?;
            if e.mds.dim(dim).contains_value(anc) {
                holds[i * d + dim] = true;
                holders_per_dim[dim] += 1;
            }
        }
    }
    let mut best: Option<(usize, u128, u128, usize, usize)> = None;
    for (i, e) in entries.iter().enumerate() {
        let mut overlap_penalty = 0usize;
        for dim in 0..d {
            if !holds[i * d + dim] {
                overlap_penalty += holders_per_dim[dim];
            }
        }
        let enlargement = e.mds.enlargement_for_record(schema, record)?;
        let key = (
            overlap_penalty,
            enlargement,
            e.mds.volume(),
            e.mds.size(),
            i,
        );
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    Ok(best.expect("non-empty entries").4)
}

/// Recompute summary + minimal MDS after a deletion (same as in-memory).
fn recompute_node(schema: &CubeSchema, node: &mut Node) -> DcResult<()> {
    let levels = node.mds.levels();
    let (mds, summary) = match &node.kind {
        NodeKind::Data(records) => {
            if records.is_empty() {
                (node.mds.clone(), MeasureSummary::empty())
            } else {
                let mut mds: Option<Mds> = None;
                let mut summary = MeasureSummary::empty();
                for r in records {
                    summary.add(r.record.measure);
                    let p = Mds::from_record(&r.record).adapt_to_levels(schema, &levels)?;
                    mds = Some(match mds {
                        None => p,
                        Some(m) => m.union_aligned(&p),
                    });
                }
                (mds.expect("non-empty records"), summary)
            }
        }
        NodeKind::Dir(entries) => {
            let levels: Vec<u8> = (0..node.mds.num_dims())
                .map(|dim| {
                    entries
                        .iter()
                        .map(|e| e.mds.dim(dim).level())
                        .max()
                        .unwrap_or(levels[dim])
                })
                .collect();
            let mut mds: Option<Mds> = None;
            let mut summary = MeasureSummary::empty();
            for e in entries {
                summary.merge(&e.summary);
                let p = e.mds.adapt_to_levels(schema, &levels)?;
                mds = Some(match mds {
                    None => p,
                    Some(m) => m.union_aligned(&p),
                });
            }
            (mds.unwrap_or_else(|| node.mds.clone()), summary)
        }
    };
    node.mds = mds;
    node.summary = summary;
    Ok(())
}

// ----------------------------------------------------------------------
// Chain primitives (shared layout with the paged checkpoint store)
// ----------------------------------------------------------------------

fn read_chain(pool: &mut BufferPool, head: PageId) -> DcResult<Vec<u8>> {
    let mut out = Vec::new();
    let mut page = head.0;
    let mut guard = 0usize;
    while page != CHAIN_NONE {
        let (next, chunk) = pool.with_page(PageId(page), |d| {
            let next = u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(d[8..12].try_into().expect("4 bytes")) as usize;
            let len = len.min(d.len() - PAGE_HEADER);
            (next, d[PAGE_HEADER..PAGE_HEADER + len].to_vec())
        })?;
        out.extend_from_slice(&chunk);
        page = next;
        guard += 1;
        if guard > 1 << 22 {
            return Err(DcError::Corrupt("page chain cycle".into()));
        }
    }
    Ok(out)
}

fn chain_pages(pool: &mut BufferPool, head: PageId) -> DcResult<Vec<PageId>> {
    let mut pages = vec![head];
    let mut page = head.0;
    loop {
        let next = pool.with_page(PageId(page), |d| {
            u64::from_le_bytes(d[0..8].try_into().expect("8 bytes"))
        })?;
        if next == CHAIN_NONE {
            return Ok(pages);
        }
        pages.push(PageId(next));
        page = next;
        if pages.len() > 1 << 22 {
            return Err(DcError::Corrupt("page chain cycle".into()));
        }
    }
}

/// Rewrites the chain headed at `head` (which stays the head) to hold
/// `bytes`, reusing pages, allocating extras, freeing spares.
fn write_chain(
    pool: &mut BufferPool,
    head: PageId,
    bytes: &[u8],
    payload_per_page: usize,
) -> DcResult<()> {
    let mut existing = chain_pages(pool, head)?;
    let chunks: Vec<&[u8]> = if bytes.is_empty() {
        vec![&[][..]]
    } else {
        bytes.chunks(payload_per_page).collect()
    };
    // Grow or shrink the page list to match.
    while existing.len() < chunks.len() {
        let p = pool.alloc()?;
        existing.push(p);
    }
    while existing.len() > chunks.len() {
        let spare = existing.pop().expect("len checked");
        pool.free(spare)?;
    }
    for (i, chunk) in chunks.iter().enumerate() {
        let next = if i + 1 < existing.len() {
            existing[i + 1].0
        } else {
            CHAIN_NONE
        };
        pool.with_page_mut(existing[i], |d| {
            d[0..8].copy_from_slice(&next.to_le_bytes());
            d[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
            d[PAGE_HEADER..PAGE_HEADER + chunk.len()].copy_from_slice(chunk);
        })?;
    }
    Ok(())
}

fn free_chain(pool: &mut BufferPool, head: PageId) -> DcResult<()> {
    for page in chain_pages(pool, head)? {
        pool.free(page)?;
    }
    Ok(())
}
