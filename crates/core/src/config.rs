//! DC-tree tuning knobs.

use dc_storage::BlockConfig;

/// Configuration of a [`DcTree`](crate::tree::DcTree).
///
/// The defaults use 4 KiB blocks, supernodes, and materialized aggregates,
/// with split-acceptance thresholds of `min_fill = 0.20` and
/// `max_overlap = 0.0` (only overlap-free directory splits are accepted;
/// everything else grows supernodes). The paper inherits the X-tree's 35% /
/// 20% thresholds instead — the ablation harness (`dc-bench`, ablation A3)
/// sweeps both knobs and shows that on the TPC-D cube the zero-overlap
/// setting dominates for query time *and* page I/O: tolerated overlap
/// compounds across directory levels and forces multi-path descents,
/// while the supernodes it avoids are exactly the behaviour the paper
/// itself reports on the level below the root (Fig. 13).
#[derive(Clone, Copy, Debug)]
pub struct DcTreeConfig {
    /// The simulated block device.
    pub block: BlockConfig,
    /// Directory-node capacity: entries per block. A supernode of `b` blocks
    /// holds up to `dir_capacity · b` entries before it must split (§4.2).
    pub dir_capacity: usize,
    /// Data-node capacity: records per block. A stored record is
    /// `4·d + 8` bytes (one leaf ID per dimension plus the measure); the
    /// default of 128 fills a 4 KiB block for the 4-dimensional TPC-D cube
    /// while leaving room for the node's MDS and summary.
    pub data_capacity: usize,
    /// A split is *balanced* iff the smaller group holds at least this
    /// fraction of the entries (the X-tree's unbalanced-split threshold).
    pub min_fill: f64,
    /// A split is accepted only if `overlap(G1,G2) / extension(G1,G2)` does
    /// not exceed this ratio ("overlap is not too high", Fig. 5).
    pub max_overlap: f64,
    /// When `false`, failed splits fall back to a forced best-effort split
    /// instead of creating a supernode (ablation A2 in `DESIGN.md`).
    pub allow_supernodes: bool,
    /// Upper bound on a supernode's size in blocks. Beyond it the node is
    /// force-split with the least-bad grouping found: an unbounded
    /// supernode makes every choose-subtree scan (and every failed split
    /// retry) linear in the node's entry count, turning bulk loads
    /// quadratic. 32 blocks ≈ 512 directory entries with the default
    /// capacity.
    pub max_supernode_blocks: u32,
    /// When `false`, range queries ignore the materialized measures and
    /// always descend to the data pages (ablation A1) — this degrades the
    /// DC-tree to a "structure-only" index, isolating the contribution of
    /// the materialization.
    pub use_materialized_aggregates: bool,
    /// **Reproduction erratum switch — leave `false` for correct answers.**
    ///
    /// The paper's range-query algorithm (Fig. 7) makes a directory entry
    /// and the query comparable by adapting "the MDS with the lower level to
    /// the one with the higher level" and then testing set containment.
    /// When the *query* is the finer side this over-approximates: a query
    /// selecting one day of March, adapted up to month level, *contains*
    /// an entry covering all of March, so the entry's whole materialized
    /// measure is added — an overcount. This implementation defaults to the
    /// sound direction (an entry only counts as contained when every value
    /// is dominated by a query value); setting this flag reproduces the
    /// paper's literal algorithm, which fires the shortcut far more often
    /// at the price of wrong answers on mixed-level queries (demonstrated
    /// by `paper_fig7_containment_overcounts` in the test suite).
    pub use_paper_fig7_containment: bool,
}

impl DcTreeConfig {
    /// Non-panicking validation, used when a configuration arrives from
    /// untrusted input (the persistence load path).
    pub(crate) fn validate_checked(&self) -> Result<(), String> {
        if self.dir_capacity < 2 || self.data_capacity < 2 {
            return Err("node capacities must be at least 2".into());
        }
        if !(0.0..=0.5).contains(&self.min_fill) {
            return Err(format!("min_fill {} outside [0, 0.5]", self.min_fill));
        }
        if !(0.0..=1.0).contains(&self.max_overlap) {
            return Err(format!("max_overlap {} outside [0, 1]", self.max_overlap));
        }
        if self.max_supernode_blocks == 0 {
            return Err("max_supernode_blocks must be at least 1".into());
        }
        Ok(())
    }

    /// Validates the configuration, panicking on nonsensical values.
    /// Called by `DcTree::new`.
    pub(crate) fn validate(&self) {
        assert!(
            self.dir_capacity >= 2,
            "directory capacity must be at least 2"
        );
        assert!(self.data_capacity >= 2, "data capacity must be at least 2");
        assert!(
            (0.0..=0.5).contains(&self.min_fill),
            "min_fill must be in [0, 0.5], got {}",
            self.min_fill
        );
        assert!(
            (0.0..=1.0).contains(&self.max_overlap),
            "max_overlap must be in [0, 1], got {}",
            self.max_overlap
        );
        assert!(
            self.max_supernode_blocks >= 1,
            "max_supernode_blocks must be at least 1"
        );
    }

    /// Smallest group size acceptable when splitting `members` entries.
    pub(crate) fn min_group(&self, members: usize) -> usize {
        ((members as f64) * self.min_fill).ceil().max(1.0) as usize
    }
}

impl Default for DcTreeConfig {
    fn default() -> Self {
        DcTreeConfig {
            block: BlockConfig::DEFAULT,
            dir_capacity: 16,
            data_capacity: 128,
            min_fill: 0.20,
            max_overlap: 0.0,
            allow_supernodes: true,
            max_supernode_blocks: 32,
            use_materialized_aggregates: true,
            use_paper_fig7_containment: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        DcTreeConfig::default().validate();
    }

    #[test]
    fn min_group_rounds_up_and_is_positive() {
        let c = DcTreeConfig {
            min_fill: 0.35,
            ..DcTreeConfig::default()
        };
        assert_eq!(c.min_group(17), 6); // ceil(5.95)
        let c0 = DcTreeConfig {
            min_fill: 0.0,
            ..DcTreeConfig::default()
        };
        assert_eq!(c0.min_group(10), 1);
    }

    #[test]
    #[should_panic(expected = "min_fill")]
    fn unbalanced_min_fill_rejected() {
        DcTreeConfig {
            min_fill: 0.9,
            ..DcTreeConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_rejected() {
        DcTreeConfig {
            dir_capacity: 1,
            ..DcTreeConfig::default()
        }
        .validate();
    }
}
