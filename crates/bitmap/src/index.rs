//! The bitmap index over a data cube.
//!
//! One compressed bitmap per attribute value of every hierarchy level of
//! every dimension, plus a measure column addressed by record id. A range
//! MDS is evaluated the classic way: OR the bitmaps of the selected values
//! within each dimension, AND the per-dimension results, then walk the
//! surviving record ids through the measure column.
//!
//! The structure demonstrates both halves of the paper's §2 verdict:
//! queries are fast set algebra, but **every insertion touches one bitmap
//! per (dimension, level)** — 13 bitmap appends per record on the TPC-D
//! cube — and the measure column is unclustered, so selected records
//! scatter across its pages.

use std::collections::HashMap;

use dc_common::{AggregateOp, DcError, DcResult, DimensionId, Measure, MeasureSummary, ValueId};
use dc_hierarchy::{CubeSchema, Record};
use dc_mds::Mds;
use dc_storage::{BlockConfig, IoStats, IoTracker};

use crate::wah::CompressedBitmap;

/// A compressed bitmap index over the cube's dimensions and hierarchy
/// levels, with a measure column.
#[derive(Clone, Debug)]
pub struct BitmapIndex {
    /// `bitmaps[dim][level]` maps a value's per-level index to its bitmap.
    bitmaps: Vec<Vec<HashMap<u32, CompressedBitmap>>>,
    measures: Vec<Measure>,
    /// Records logically deleted (bitmap indices handle deletion by
    /// masking, not by rewriting every bitmap).
    deleted: CompressedBitmap,
    deleted_count: u64,
    records_per_block: usize,
    io: IoTracker,
}

impl BitmapIndex {
    /// An empty index for `schema`'s shape.
    pub fn new(schema: &CubeSchema, block: BlockConfig) -> Self {
        let bitmaps = schema
            .dims()
            .map(|h| (0..h.top_level()).map(|_| HashMap::new()).collect())
            .collect();
        let record_bytes = schema.num_dims() * 4 + 8;
        BitmapIndex {
            bitmaps,
            measures: Vec::new(),
            deleted: CompressedBitmap::new(),
            deleted_count: 0,
            records_per_block: (block.block_size / record_bytes.max(1)).max(1),
            io: IoTracker::new(),
        }
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.measures.len() as u64 - self.deleted_count
    }

    /// `true` iff no live records exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical I/O counters. Bitmap touches are charged per compressed
    /// block; measure lookups per record block.
    pub fn io_stats(&self) -> IoStats {
        self.io.stats()
    }

    /// Resets the I/O counters.
    pub fn reset_io(&self) {
        self.io.reset();
    }

    /// Total compressed size of all bitmaps, in bytes.
    pub fn bitmap_bytes(&self) -> usize {
        self.bitmaps
            .iter()
            .flatten()
            .flat_map(HashMap::values)
            .map(CompressedBitmap::size_in_bytes)
            .sum()
    }

    /// Inserts a record — the expensive path the paper criticizes: one
    /// bitmap append per (dimension, level).
    pub fn insert(&mut self, schema: &CubeSchema, record: &Record) -> DcResult<()> {
        schema.validate_record(record)?;
        let rid = self.measures.len() as u64;
        for (d, h) in schema.dims().enumerate() {
            for level in 0..h.top_level() {
                let value = h.ancestor_at(record.dims[d], level)?;
                let bm = self.bitmaps[d][level as usize]
                    .entry(value.index())
                    .or_default();
                bm.set(rid);
                // Each append dirties (at worst) the bitmap's last block.
                self.io.write(1);
            }
        }
        self.measures.push(record.measure);
        self.io.write(1);
        Ok(())
    }

    /// Marks one record matching `record` (dims and measure) as deleted.
    /// Returns `false` when none matches. Deletion never rewrites value
    /// bitmaps; the deleted mask is consulted at query time.
    pub fn delete(&mut self, schema: &CubeSchema, record: &Record) -> DcResult<bool> {
        schema.validate_record(record)?;
        // Find candidates by intersecting the leaf-level bitmaps.
        let mut acc: Option<CompressedBitmap> = None;
        for (d, _) in schema.dims().enumerate() {
            let bm = self.bitmaps[d][0]
                .get(&record.dims[d].index())
                .cloned()
                .unwrap_or_default();
            self.charge_bitmap_read(&bm);
            acc = Some(match acc {
                None => bm,
                Some(a) => a.and(&bm),
            });
        }
        let Some(candidates) = acc else {
            return Ok(false);
        };
        let deleted: Vec<u64> = self.deleted.iter_ones().collect();
        for rid in candidates.iter_ones() {
            if self.measures[rid as usize] == record.measure && deleted.binary_search(&rid).is_err()
            {
                // Rebuild the deleted mask with the new bit (append-only
                // bitmaps cannot set an interior bit directly).
                let mut single = CompressedBitmap::new();
                single.set(rid);
                self.deleted = self.deleted.or(&single);
                self.deleted_count += 1;
                self.io.write(1);
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn charge_bitmap_read(&self, bm: &CompressedBitmap) {
        let blocks = bm.size_in_bytes().div_ceil(4096).max(1);
        self.io.read(blocks as u32);
    }

    /// Evaluates a range MDS: OR within dimensions, AND across, then gather
    /// measures.
    pub fn range_summary(&self, schema: &CubeSchema, range: &Mds) -> DcResult<MeasureSummary> {
        if range.num_dims() != schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: schema.num_dims(),
                got: range.num_dims(),
            });
        }
        let mut acc: Option<CompressedBitmap> = None;
        for ((d, set), h) in range.dims().enumerate().zip(schema.dims()) {
            if set.level() >= h.top_level() {
                continue; // ALL — unconstrained
            }
            let level = &self.bitmaps[d][set.level() as usize];
            let mut dim_or = CompressedBitmap::new();
            for &v in set.values() {
                if let Some(bm) = level.get(&v.index()) {
                    self.charge_bitmap_read(bm);
                    dim_or = dim_or.or(bm);
                }
            }
            acc = Some(match acc {
                None => dim_or,
                Some(a) => a.and(&dim_or),
            });
        }

        let mut summary = MeasureSummary::empty();
        match acc {
            None => {
                // Fully unconstrained: every live record qualifies.
                let deleted: Vec<u64> = self.deleted.iter_ones().collect();
                let blocks = self.measures.len().div_ceil(self.records_per_block).max(1);
                self.io.read(blocks as u32);
                for (rid, &m) in self.measures.iter().enumerate() {
                    if deleted.binary_search(&(rid as u64)).is_err() {
                        summary.add(m);
                    }
                }
            }
            Some(selected) => {
                let deleted: Vec<u64> = self.deleted.iter_ones().collect();
                // The measure column is unclustered: each selected record
                // costs a block read unless it shares the previous one.
                let mut last_block = u64::MAX;
                for rid in selected.iter_ones() {
                    if deleted.binary_search(&rid).is_ok() {
                        continue;
                    }
                    let block = rid / self.records_per_block as u64;
                    if block != last_block {
                        self.io.read(1);
                        last_block = block;
                    }
                    summary.add(self.measures[rid as usize]);
                }
            }
        }
        Ok(summary)
    }

    /// Groups the records selected by `range` on `(dim, level)` with pure
    /// set algebra: the filter bitmap is built once (OR within dimensions,
    /// AND across), then ANDed with every value bitmap of the grouping
    /// level; only non-empty groups are returned, sorted by value id.
    pub fn group_by(
        &self,
        schema: &CubeSchema,
        dim: DimensionId,
        level: u8,
        range: &Mds,
    ) -> DcResult<Vec<(ValueId, MeasureSummary)>> {
        if range.num_dims() != schema.num_dims() {
            return Err(DcError::DimensionMismatch {
                expected: schema.num_dims(),
                got: range.num_dims(),
            });
        }
        let h = schema.dim(dim);
        if level >= h.top_level() {
            return Err(DcError::BadLevel {
                dim,
                id: h.all(),
                requested: level,
            });
        }
        let mut acc: Option<CompressedBitmap> = None;
        for ((d, set), h) in range.dims().enumerate().zip(schema.dims()) {
            if set.level() >= h.top_level() {
                continue; // ALL — unconstrained
            }
            let per_value = &self.bitmaps[d][set.level() as usize];
            let mut dim_or = CompressedBitmap::new();
            for &v in set.values() {
                if let Some(bm) = per_value.get(&v.index()) {
                    self.charge_bitmap_read(bm);
                    dim_or = dim_or.or(bm);
                }
            }
            acc = Some(match acc {
                None => dim_or,
                Some(a) => a.and(&dim_or),
            });
        }
        let deleted: Vec<u64> = self.deleted.iter_ones().collect();
        let level_bitmaps = &self.bitmaps[dim.as_usize()][level as usize];
        let mut keys: Vec<u32> = level_bitmaps.keys().copied().collect();
        keys.sort_unstable();
        let mut groups = Vec::new();
        for key in keys {
            let bm = &level_bitmaps[&key];
            self.charge_bitmap_read(bm);
            let selected = match &acc {
                None => bm.clone(),
                Some(a) => a.and(bm),
            };
            let mut summary = MeasureSummary::empty();
            let mut last_block = u64::MAX;
            for rid in selected.iter_ones() {
                if deleted.binary_search(&rid).is_ok() {
                    continue;
                }
                let block = rid / self.records_per_block as u64;
                if block != last_block {
                    self.io.read(1);
                    last_block = block;
                }
                summary.add(self.measures[rid as usize]);
            }
            if summary.count > 0 {
                groups.push((ValueId::new(level, key), summary));
            }
        }
        Ok(groups)
    }

    /// Evaluates a range query with one aggregation operator.
    pub fn range_query(
        &self,
        schema: &CubeSchema,
        range: &Mds,
        op: AggregateOp,
    ) -> DcResult<Option<f64>> {
        Ok(self.range_summary(schema, range)?.eval(op))
    }

    /// Direct access to one value's bitmap (diagnostics).
    pub fn bitmap_for(&self, dim: DimensionId, value: ValueId) -> Option<&CompressedBitmap> {
        self.bitmaps
            .get(dim.as_usize())?
            .get(value.level() as usize)?
            .get(&value.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_hierarchy::HierarchySchema;
    use dc_mds::DimSet;

    fn setup() -> (CubeSchema, BitmapIndex, Vec<Record>) {
        let mut schema = CubeSchema::new(
            vec![
                HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
                HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
            ],
            "Price",
        );
        let mut idx = BitmapIndex::new(&schema, BlockConfig::DEFAULT);
        let mut records = Vec::new();
        for (r, n, y, m, price) in [
            ("EU", "DE", "1996", "01", 100),
            ("EU", "FR", "1996", "02", 250),
            ("AS", "JP", "1997", "01", 400),
            ("EU", "DE", "1997", "03", 50),
        ] {
            let rec = schema
                .intern_record(&[vec![r, n], vec![y, m]], price)
                .unwrap();
            idx.insert(&schema, &rec).unwrap();
            records.push(rec);
        }
        (schema, idx, records)
    }

    #[test]
    fn range_queries_match_semantics() {
        let (schema, idx, _) = setup();
        let eu = schema.dim(DimensionId(0)).lookup_path(&["EU"]).unwrap();
        let y96 = schema.dim(DimensionId(1)).lookup_path(&["1996"]).unwrap();
        let q = Mds::new(vec![DimSet::singleton(eu), DimSet::singleton(y96)]);
        let s = idx.range_summary(&schema, &q).unwrap();
        assert_eq!(s.sum, 350);
        assert_eq!(s.count, 2);
        // Unconstrained query returns the total.
        let all = Mds::all(&schema);
        assert_eq!(idx.range_summary(&schema, &all).unwrap().count, 4);
    }

    #[test]
    fn leaf_level_queries_work() {
        let (schema, idx, _) = setup();
        let de = schema
            .dim(DimensionId(0))
            .lookup_path(&["EU", "DE"])
            .unwrap();
        let q = Mds::new(vec![
            DimSet::singleton(de),
            DimSet::singleton(schema.dim(DimensionId(1)).all()),
        ]);
        let s = idx.range_summary(&schema, &q).unwrap();
        assert_eq!(s.sum, 150);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn delete_masks_one_record() {
        let (schema, mut idx, records) = setup();
        assert!(idx.delete(&schema, &records[0]).unwrap());
        assert_eq!(idx.len(), 3);
        let all = Mds::all(&schema);
        let s = idx.range_summary(&schema, &all).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 700);
        // Deleting again finds nothing equal (measure included).
        assert!(!idx.delete(&schema, &records[0]).unwrap());
    }

    #[test]
    fn group_by_matches_manual_grouping() {
        let (schema, mut idx, records) = setup();
        // Group by Customer.Region over everything.
        let all = Mds::all(&schema);
        let groups = idx.group_by(&schema, DimensionId(0), 1, &all).unwrap();
        let h = schema.dim(DimensionId(0));
        let by_name: Vec<(&str, u64, i64)> = groups
            .iter()
            .map(|(v, s)| (h.name(*v).unwrap(), s.count, s.sum))
            .collect();
        assert!(by_name.contains(&("EU", 3, 400)));
        assert!(by_name.contains(&("AS", 1, 400)));
        // Deletion is honoured.
        assert!(idx.delete(&schema, &records[0]).unwrap());
        let groups = idx.group_by(&schema, DimensionId(0), 1, &all).unwrap();
        let eu = groups
            .iter()
            .find(|(v, _)| h.name(*v).unwrap() == "EU")
            .unwrap();
        assert_eq!(eu.1.count, 2);
        // A filtered group-by: only 1996 records.
        let y96 = schema.dim(DimensionId(1)).lookup_path(&["1996"]).unwrap();
        let q = Mds::new(vec![
            DimSet::singleton(schema.dim(DimensionId(0)).all()),
            DimSet::singleton(y96),
        ]);
        let groups = idx.group_by(&schema, DimensionId(0), 1, &q).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.sum, 250);
        // Grouping on the ALL pseudo-level is rejected.
        assert!(idx
            .group_by(&schema, DimensionId(0), h.top_level(), &all)
            .is_err());
    }

    #[test]
    fn insert_cost_grows_with_hierarchy_size() {
        // The paper's point: every insert appends to one bitmap per
        // (dimension, level) — 4 here — plus the measure column.
        let (schema, _, _) = setup();
        let mut idx = BitmapIndex::new(&schema, BlockConfig::DEFAULT);
        let mut s2 = schema;
        let rec = s2
            .intern_record(&[vec!["EU", "DE"], vec!["1996", "01"]], 10)
            .unwrap();
        idx.reset_io();
        idx.insert(&s2, &rec).unwrap();
        assert_eq!(idx.io_stats().writes, 4 + 1);
    }

    #[test]
    fn empty_value_set_yields_empty_result() {
        let (schema, idx, _) = setup();
        // A nation that exists but has no records at this measure level...
        // use a value with no bitmap: query on year 1998 (never inserted).
        let mut s2 = schema;
        let rec = s2
            .intern_record(&[vec!["EU", "DE"], vec!["1998", "01"]], 0)
            .unwrap();
        let _ = rec;
        let y98 = s2.dim(DimensionId(1)).lookup_path(&["1998"]).unwrap();
        let q = Mds::new(vec![
            DimSet::singleton(s2.dim(DimensionId(0)).all()),
            DimSet::singleton(y98),
        ]);
        assert_eq!(idx.range_summary(&s2, &q).unwrap(), MeasureSummary::empty());
    }
}
