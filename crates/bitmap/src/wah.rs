//! Word-aligned-hybrid (WAH-style) compressed bitmaps.
//!
//! The encoding uses 64-bit words of two kinds:
//! * **literal** (MSB = 0): 63 payload bits verbatim;
//! * **fill** (MSB = 1): bit 62 is the fill bit, the low 62 bits count how
//!   many consecutive 63-bit groups consist entirely of that bit.
//!
//! Warehouse bitmaps are extremely sparse (each record sets one bit per
//! attribute), so zero-fills dominate and the index stays small. Bitmaps
//! are append-only (bits are set in increasing record order — exactly how
//! an index ingests records) and support the two bulk operations a bitmap
//! index needs: OR (within a dimension) and AND (across dimensions), plus
//! iteration over set bits.

const GROUP: u64 = 63;
const FILL_FLAG: u64 = 1 << 63;
const FILL_BIT: u64 = 1 << 62;
const COUNT_MASK: u64 = (1 << 62) - 1;

/// A WAH-style compressed bitmap.
///
/// The derived equality is **structural** (same encoding); logically equal
/// bitmaps with different flush states compare unequal — compare
/// `iter_ones()` streams for logical equality.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct CompressedBitmap {
    words: Vec<u64>,
    /// Number of 63-bit groups encoded in `words`.
    groups: u64,
    /// Pending (not yet flushed) literal group.
    tail: u64,
    /// Number of bits in the logical bitmap (set via `set`/`push_group`).
    len: u64,
}

impl CompressedBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logical length in bits (highest position passed to [`Self::set`],
    /// plus one; unset trailing bits are implicit zeros).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` iff no bit was ever set or skipped over.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap footprint of the compressed representation, in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 8 + 8 * 3
    }

    fn push_fill(&mut self, bit: bool, count: u64) {
        if count == 0 {
            return;
        }
        // Coalesce with a preceding fill of the same bit.
        if let Some(last) = self.words.last_mut() {
            let same = *last & FILL_FLAG != 0
                && ((*last & FILL_BIT != 0) == bit)
                && (*last & COUNT_MASK) + count <= COUNT_MASK;
            if same {
                *last += count;
                self.groups += count;
                return;
            }
        }
        let mut w = FILL_FLAG | count;
        if bit {
            w |= FILL_BIT;
        }
        self.words.push(w);
        self.groups += count;
    }

    fn push_literal(&mut self, payload: u64) {
        debug_assert_eq!(payload & !((1 << GROUP) - 1), 0);
        if payload == 0 {
            self.push_fill(false, 1);
        } else if payload == (1 << GROUP) - 1 {
            self.push_fill(true, 1);
        } else {
            self.words.push(payload);
            self.groups += 1;
        }
    }

    /// Sets bit `pos`. Positions must be strictly increasing across calls —
    /// the append-only discipline of index construction.
    ///
    /// # Panics
    /// Panics if `pos` is not beyond every previously set bit.
    pub fn set(&mut self, pos: u64) {
        assert!(
            pos >= self.len,
            "bits must be set in increasing order ({pos} < {})",
            self.len
        );
        let group = pos / GROUP;
        assert!(
            group >= self.groups,
            "append-only: group {group} already flushed (merged bitmaps are read-only)"
        );
        // The tail accumulates group index `self.groups`; everything below
        // is flushed. Entering a later group flushes the tail and zero-fills
        // any wholly skipped groups.
        if group > self.groups {
            if self.len > self.groups * GROUP || self.tail != 0 {
                let tail = self.tail;
                self.tail = 0;
                self.push_literal(tail);
            }
            if group > self.groups {
                let skipped = group - self.groups;
                self.push_fill(false, skipped);
            }
        }
        debug_assert_eq!(group, self.groups, "tail now accumulates this group");
        self.tail |= 1 << (pos % GROUP);
        self.len = pos + 1;
    }

    /// Extends the logical length to `len` bits without setting anything.
    pub fn pad_to(&mut self, len: u64) {
        if len > self.len {
            self.len = len;
        }
    }

    /// Iterates over the positions of set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u64> + '_ {
        OnesIter {
            cursor: GroupCursor::new(self),
            group: 0,
            payload: 0,
            base: 0,
        }
    }

    /// Bitwise OR. Lengths may differ; the result has the longer length.
    pub fn or(&self, other: &Self) -> Self {
        merge(self, other, |a, b| a | b)
    }

    /// Bitwise AND. The result has the longer length (all-zero beyond the
    /// shorter operand).
    pub fn and(&self, other: &Self) -> Self {
        merge(self, other, |a, b| a & b)
    }

    /// The raw encoded parts `(words, tail, len)` for persistence. Feed
    /// them back through [`Self::from_parts`] to reconstruct the bitmap.
    pub fn to_parts(&self) -> (&[u64], u64, u64) {
        (&self.words, self.tail, self.len)
    }

    /// Reassembles a bitmap from persisted parts, validating the encoding
    /// (this is the disk-decode path, so the input is untrusted). `max_len`
    /// bounds the logical length — callers know their domain size, and the
    /// bound keeps a corrupt fill count from turning `iter_ones` into an
    /// effectively unbounded loop. Returns `None` on any inconsistency.
    pub fn from_parts(words: Vec<u64>, tail: u64, len: u64, max_len: u64) -> Option<Self> {
        if len > max_len || tail & FILL_FLAG != 0 {
            return None;
        }
        let mut groups: u64 = 0;
        for &w in &words {
            if w & FILL_FLAG != 0 {
                let count = w & COUNT_MASK;
                if count == 0 {
                    return None; // the encoder never writes empty fills
                }
                groups = groups.checked_add(count)?;
            } else {
                groups = groups.checked_add(1)?;
            }
            // Flushed groups may extend at most one group past `len`
            // (see `merge`), so anything beyond that is corrupt.
            if groups > len / GROUP + 1 {
                return None;
            }
        }
        if tail != 0 && len <= groups * GROUP {
            return None; // a tail the cursor would never surface
        }
        Some(CompressedBitmap {
            words,
            groups,
            tail,
            len,
        })
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        let mut n = 0;
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                if w & FILL_BIT != 0 {
                    n += (w & COUNT_MASK) * GROUP;
                }
            } else {
                n += w.count_ones() as u64;
            }
        }
        n + self.tail.count_ones() as u64
    }
}

/// Decodes a bitmap group by group (63-bit payloads).
struct GroupCursor<'a> {
    bitmap: &'a CompressedBitmap,
    word_idx: usize,
    /// Groups remaining in the current fill word.
    fill_left: u64,
    fill_payload: u64,
    tail_done: bool,
}

impl<'a> GroupCursor<'a> {
    fn new(bitmap: &'a CompressedBitmap) -> Self {
        GroupCursor {
            bitmap,
            word_idx: 0,
            fill_left: 0,
            fill_payload: 0,
            tail_done: false,
        }
    }

    /// Next 63-bit group payload, or `None` past the end (the caller pads
    /// with zeros as needed).
    fn next_group(&mut self) -> Option<u64> {
        if self.fill_left > 0 {
            self.fill_left -= 1;
            return Some(self.fill_payload);
        }
        if let Some(&w) = self.bitmap.words.get(self.word_idx) {
            self.word_idx += 1;
            if w & FILL_FLAG != 0 {
                let payload = if w & FILL_BIT != 0 {
                    (1 << GROUP) - 1
                } else {
                    0
                };
                let count = w & COUNT_MASK;
                self.fill_left = count - 1;
                self.fill_payload = payload;
                return Some(payload);
            }
            return Some(w);
        }
        if !self.tail_done {
            self.tail_done = true;
            // The tail is only meaningful if the logical length extends
            // beyond the flushed groups.
            if self.bitmap.len > self.bitmap.groups * GROUP {
                return Some(self.bitmap.tail);
            }
        }
        None
    }
}

fn merge(a: &CompressedBitmap, b: &CompressedBitmap, op: fn(u64, u64) -> u64) -> CompressedBitmap {
    let mut out = CompressedBitmap::new();
    let mut ca = GroupCursor::new(a);
    let mut cb = GroupCursor::new(b);
    loop {
        let ga = ca.next_group();
        let gb = cb.next_group();
        if ga.is_none() && gb.is_none() {
            break;
        }
        out.push_literal(op(ga.unwrap_or(0), gb.unwrap_or(0)));
    }
    // All groups are flushed (tail stays empty); the logical length is the
    // longer operand's. Flushed groups may extend slightly past it, but
    // only with zero bits (operand tails never carry bits beyond `len`).
    out.len = a.len.max(b.len);
    out
}

struct OnesIter<'a> {
    cursor: GroupCursor<'a>,
    /// Index of the group currently held in `payload`.
    group: u64,
    /// Remaining unemitted bits of the current group.
    payload: u64,
    /// Bit position of the current group's first bit.
    base: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.payload != 0 {
                let bit = self.payload.trailing_zeros() as u64;
                self.payload &= self.payload - 1;
                return Some(self.base + bit);
            }
            let g = self.cursor.next_group()?;
            self.base = self.group * GROUP;
            self.group += 1;
            self.payload = g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_positions(pos: &[u64]) -> CompressedBitmap {
        let mut b = CompressedBitmap::new();
        for &p in pos {
            b.set(p);
        }
        b
    }

    #[test]
    fn set_and_iterate_roundtrip() {
        let pos = [0u64, 1, 62, 63, 64, 126, 1000, 1001, 100_000];
        let b = from_positions(&pos);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), pos);
        assert_eq!(b.count_ones(), pos.len() as u64);
        assert_eq!(b.len(), 100_001);
    }

    #[test]
    fn parts_roundtrip_preserves_encoding() {
        for pos in [
            &[0u64, 5, 63, 200][..],
            &[][..],
            &[62, 63][..],
            &[100_000][..],
        ] {
            let b = from_positions(pos);
            let (words, tail, len) = b.to_parts();
            let back = CompressedBitmap::from_parts(words.to_vec(), tail, len, 1 << 32)
                .expect("valid parts reassemble");
            assert_eq!(back, b, "structural equality for {pos:?}");
            assert_eq!(back.iter_ones().collect::<Vec<_>>(), pos);
        }
    }

    #[test]
    fn corrupt_parts_are_rejected() {
        // A zero-count fill word never comes from the encoder.
        assert!(CompressedBitmap::from_parts(vec![FILL_FLAG], 0, 63, 1 << 32).is_none());
        // Fill count extending far past the declared length.
        assert!(CompressedBitmap::from_parts(
            vec![FILL_FLAG | FILL_BIT | 1_000_000],
            0,
            63,
            1 << 32
        )
        .is_none());
        // Length beyond the caller's domain bound.
        assert!(CompressedBitmap::from_parts(vec![], 0, u64::MAX, 1 << 32).is_none());
        // Tail with the fill flag set is not a 63-bit payload.
        assert!(CompressedBitmap::from_parts(vec![], FILL_FLAG | 1, 64, 1 << 32).is_none());
        // A non-zero tail the group cursor would never surface.
        assert!(CompressedBitmap::from_parts(vec![0b1010], 1, 63, 1 << 32).is_none());
    }

    #[test]
    fn sparse_bitmaps_compress_well() {
        let mut b = CompressedBitmap::new();
        for i in 0..100 {
            b.set(i * 1_000_000);
        }
        // 100 M bits sparse: far below 1 KiB compressed.
        assert!(b.size_in_bytes() < 8_192, "{} bytes", b.size_in_bytes());
        assert_eq!(b.count_ones(), 100);
    }

    #[test]
    fn dense_runs_become_fills() {
        let mut b = CompressedBitmap::new();
        for i in 0..63 * 10 {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 630);
        // Ten full groups coalesce into one fill word (plus bookkeeping).
        assert!(
            b.size_in_bytes() <= 8 * 2 + 24,
            "{} bytes",
            b.size_in_bytes()
        );
        assert_eq!(b.iter_ones().count(), 630);
    }

    #[test]
    fn or_unions_and_and_intersects() {
        let a = from_positions(&[1, 5, 100, 200]);
        let b = from_positions(&[5, 100, 300, 5000]);
        let or: Vec<u64> = a.or(&b).iter_ones().collect();
        assert_eq!(or, vec![1, 5, 100, 200, 300, 5000]);
        let and: Vec<u64> = a.and(&b).iter_ones().collect();
        assert_eq!(and, vec![5, 100]);
        assert_eq!(a.or(&b).len(), 5001);
    }

    #[test]
    fn operations_with_empty() {
        let a = from_positions(&[7, 70]);
        let e = CompressedBitmap::new();
        // Logical (not structural) equality: a merge flushes the tail, so
        // the representation may differ while the bit set is identical.
        assert_eq!(
            a.or(&e).iter_ones().collect::<Vec<_>>(),
            a.iter_ones().collect::<Vec<_>>()
        );
        assert_eq!(a.or(&e).len(), a.len());
        assert_eq!(a.and(&e).count_ones(), 0);
        assert_eq!(e.or(&e).count_ones(), 0);
    }

    #[test]
    fn out_of_order_set_panics() {
        let mut b = from_positions(&[10]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.set(5)));
        assert!(result.is_err());
    }

    #[test]
    fn merge_results_are_composable() {
        let a = from_positions(&[0, 64, 128]);
        let b = from_positions(&[64, 129]);
        let c = from_positions(&[0, 129, 10_000]);
        let u = a.or(&b).or(&c);
        assert_eq!(
            u.iter_ones().collect::<Vec<_>>(),
            vec![0, 64, 128, 129, 10_000]
        );
        let i = a.or(&b).and(&c);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn pad_to_extends_length_only() {
        let mut b = from_positions(&[3]);
        b.pad_to(1_000);
        assert_eq!(b.len(), 1_000);
        assert_eq!(b.count_ones(), 1);
        // Still appendable past the pad.
        b.set(2_000);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 2_000]);
    }
}
