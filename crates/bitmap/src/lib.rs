//! # dc-bitmap
//!
//! A compressed **bitmap index** over the data cube — the classic
//! one-dimensional warehouse index the DC-tree paper's related work (§2)
//! positions itself against:
//!
//! > "In a bitmap index, leaf pages of an index structure do not contain
//! > lists of record ids but bit vectors with one bit for each data
//! > record. … Bitmap indices, however, are static because on the insertion
//! > of a data record all index entries have to be updated. Furthermore,
//! > one-dimensional index structures build secondary indices which do not
//! > impact the clustering of the database."
//!
//! This crate implements that baseline honestly and competently: one
//! word-aligned-hybrid (WAH-style) compressed bitmap per attribute value of
//! every hierarchy level of every dimension, a measure column, and a range
//! query evaluated as OR-within-dimension / AND-across-dimensions. It is a
//! *secondary* index: the measure column is scanned by record id, so — as
//! the paper observes — it cannot exploit clustering, and every insertion
//! appends to O(levels × dimensions) bitmaps.
//!
//! Used by the benchmark harness as an additional baseline alongside the
//! X-tree and the sequential scan.

pub mod index;
pub mod wah;

pub use index::BitmapIndex;
pub use wah::CompressedBitmap;
