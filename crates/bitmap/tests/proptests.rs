//! Property tests: the WAH bitmap against a naive `Vec<bool>` oracle, and
//! the bitmap index against a sequential scan on TPC-D-style cubes.

use dc_bitmap::{BitmapIndex, CompressedBitmap};
use dc_query::{RangeQueryGen, ValuePick};
use dc_storage::BlockConfig;
use dc_tpcd::{generate, TpcdConfig};
use proptest::prelude::*;

/// Strategy: a sorted, deduplicated set of bit positions.
fn positions() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::btree_set(0u64..5_000, 0..200).prop_map(|s| s.into_iter().collect())
}

fn build(pos: &[u64]) -> CompressedBitmap {
    let mut b = CompressedBitmap::new();
    for &p in pos {
        b.set(p);
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// set → iter_ones is the identity on sorted position sets.
    #[test]
    fn roundtrip(pos in positions()) {
        let b = build(&pos);
        prop_assert_eq!(b.iter_ones().collect::<Vec<_>>(), pos);
        prop_assert_eq!(b.count_ones() as usize, pos.len());
    }

    /// OR and AND agree with set union and intersection.
    #[test]
    fn or_and_match_set_algebra(a in positions(), b in positions()) {
        let ba = build(&a);
        let bb = build(&b);
        let sa: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        let sb: std::collections::BTreeSet<u64> = b.iter().copied().collect();
        let union: Vec<u64> = sa.union(&sb).copied().collect();
        let inter: Vec<u64> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(ba.or(&bb).iter_ones().collect::<Vec<_>>(), union);
        prop_assert_eq!(ba.and(&bb).iter_ones().collect::<Vec<_>>(), inter);
    }

    /// Operations compose: (a ∪ b) ∩ c computed via bitmaps equals sets.
    #[test]
    fn composition(a in positions(), b in positions(), c in positions()) {
        let (ba, bb, bc) = (build(&a), build(&b), build(&c));
        let sa: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        let sb: std::collections::BTreeSet<u64> = b.iter().copied().collect();
        let sc: std::collections::BTreeSet<u64> = c.iter().copied().collect();
        let expected: Vec<u64> =
            sa.union(&sb).copied().collect::<std::collections::BTreeSet<_>>()
                .intersection(&sc)
                .copied()
                .collect();
        prop_assert_eq!(
            ba.or(&bb).and(&bc).iter_ones().collect::<Vec<_>>(),
            expected
        );
    }

    /// Compression never loses bits on adversarial run structures
    /// (alternating dense runs and long gaps).
    #[test]
    fn dense_runs_and_gaps(runs in prop::collection::vec((0u64..50, 1u64..200), 1..20)) {
        let mut pos = Vec::new();
        let mut cursor = 0u64;
        for (gap, run) in runs {
            cursor += gap * 63;
            for _ in 0..run {
                pos.push(cursor);
                cursor += 1;
            }
        }
        let b = build(&pos);
        prop_assert_eq!(b.iter_ones().collect::<Vec<_>>(), pos);
    }
}

#[test]
fn bitmap_index_agrees_with_brute_force_on_tpcd() {
    let data = generate(&TpcdConfig::scaled(2_000, 5));
    let mut idx = BitmapIndex::new(&data.schema, BlockConfig::DEFAULT);
    for r in &data.records {
        idx.insert(&data.schema, r).unwrap();
    }
    for (sel, seed) in [(0.01, 1u64), (0.05, 2), (0.25, 3)] {
        let mut gen = RangeQueryGen::new(sel, ValuePick::ContiguousRun, seed);
        for _ in 0..40 {
            let q = gen.generate(&data.schema);
            let got = idx.range_summary(&data.schema, &q).unwrap();
            let want: dc_common::MeasureSummary = data
                .records
                .iter()
                .filter(|r| q.contains_record(&data.schema, r).unwrap())
                .map(|r| r.measure)
                .collect();
            assert_eq!(got, want, "selectivity {sel}");
        }
    }
}

#[test]
fn bitmap_index_handles_scattered_queries() {
    let data = generate(&TpcdConfig::scaled(1_500, 7));
    let mut idx = BitmapIndex::new(&data.schema, BlockConfig::DEFAULT);
    for r in &data.records {
        idx.insert(&data.schema, r).unwrap();
    }
    let mut gen = RangeQueryGen::new(0.10, ValuePick::Scattered, 9);
    for _ in 0..30 {
        let q = gen.generate(&data.schema);
        let got = idx.range_summary(&data.schema, &q).unwrap();
        let want: dc_common::MeasureSummary = data
            .records
            .iter()
            .filter(|r| q.contains_record(&data.schema, r).unwrap())
            .map(|r| r.measure)
            .collect();
        assert_eq!(got, want);
    }
}

#[test]
fn deletes_interleave_with_queries() {
    let data = generate(&TpcdConfig::scaled(600, 11));
    let mut idx = BitmapIndex::new(&data.schema, BlockConfig::DEFAULT);
    for r in &data.records {
        idx.insert(&data.schema, r).unwrap();
    }
    let mut live: Vec<_> = data.records.clone();
    for i in (0..data.records.len()).step_by(3) {
        assert!(idx.delete(&data.schema, &data.records[i]).unwrap());
        let pos = live.iter().position(|r| r == &data.records[i]).unwrap();
        live.remove(pos);
    }
    let mut gen = RangeQueryGen::new(0.25, ValuePick::ContiguousRun, 13);
    for _ in 0..20 {
        let q = gen.generate(&data.schema);
        let got = idx.range_summary(&data.schema, &q).unwrap();
        let want: dc_common::MeasureSummary = live
            .iter()
            .filter(|r| q.contains_record(&data.schema, r).unwrap())
            .map(|r| r.measure)
            .collect();
        assert_eq!(got, want);
    }
}

#[test]
fn compressed_size_stays_reasonable() {
    let data = generate(&TpcdConfig::scaled(5_000, 17));
    let mut idx = BitmapIndex::new(&data.schema, BlockConfig::DEFAULT);
    for r in &data.records {
        idx.insert(&data.schema, r).unwrap();
    }
    // 13 bitmap families over 5k records: compressed size must stay far
    // below the uncompressed total (#values × 5000 bits).
    let bytes = idx.bitmap_bytes();
    assert!(bytes < 4 << 20, "compressed index too large: {bytes} bytes");
}
