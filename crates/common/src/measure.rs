//! Measures and materialized aggregate summaries.
//!
//! The DC-tree materializes, for every MDS in the directory, "the values of
//! the measure attributes" (§3.2, §6): the aggregation of the measure over
//! all data records covered by the MDS. The paper demonstrates SUM and notes
//! that "any other aggregation, e.g. AVERAGE, would have to be treated
//! accordingly" (Fig. 7).
//!
//! We materialize a single mergeable summary — sum, count, min, max — from
//! which SUM, COUNT, AVG, MIN and MAX range queries can all be answered with
//! the contained-entry shortcut of the range-query algorithm.
//!
//! Measures are fixed-point 64-bit integers (e.g. price in cents) so that
//! aggregates are exact and test-verifiable; floating-point measures can be
//! scaled into this representation by the caller.

use std::fmt;

/// A measure value: fixed-point signed 64-bit (e.g. cents).
pub type Measure = i64;

/// The aggregation operator applied by a range query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggregateOp {
    /// Sum of the measure over all selected records.
    Sum,
    /// Number of selected records.
    Count,
    /// Average of the measure (returned as `sum / count` in f64).
    Avg,
    /// Minimum measure among selected records.
    Min,
    /// Maximum measure among selected records.
    Max,
}

impl AggregateOp {
    /// All supported operators, e.g. for exhaustive testing.
    pub const ALL: [AggregateOp; 5] = [
        AggregateOp::Sum,
        AggregateOp::Count,
        AggregateOp::Avg,
        AggregateOp::Min,
        AggregateOp::Max,
    ];
}

impl fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregateOp::Sum => "SUM",
            AggregateOp::Count => "COUNT",
            AggregateOp::Avg => "AVG",
            AggregateOp::Min => "MIN",
            AggregateOp::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// A mergeable aggregate over a set of measure values.
///
/// `MeasureSummary` forms a commutative monoid under [`merge`](Self::merge)
/// with [`empty`](Self::empty) as identity — the property the DC-tree relies
/// on when it propagates materialized measures up the directory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MeasureSummary {
    /// Sum of all measure values.
    pub sum: i64,
    /// Number of values aggregated.
    pub count: u64,
    /// Minimum value; `i64::MAX` when empty.
    pub min: i64,
    /// Maximum value; `i64::MIN` when empty.
    pub max: i64,
}

impl MeasureSummary {
    /// The identity summary (zero records).
    #[inline]
    pub fn empty() -> Self {
        MeasureSummary {
            sum: 0,
            count: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    /// Summary of a single measure value.
    #[inline]
    pub fn of(value: Measure) -> Self {
        MeasureSummary {
            sum: value,
            count: 1,
            min: value,
            max: value,
        }
    }

    /// `true` iff no records are aggregated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds one measure value.
    #[inline]
    pub fn add(&mut self, value: Measure) {
        self.sum += value;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary into this one.
    #[inline]
    pub fn merge(&mut self, other: &MeasureSummary) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the merge of two summaries.
    #[inline]
    pub fn merged(mut self, other: &MeasureSummary) -> Self {
        self.merge(other);
        self
    }

    /// Removes one measure value from the sum and count.
    ///
    /// Returns `true` if min/max remain exact, `false` if the removed value
    /// touched an extremum, in which case the caller must recompute min/max
    /// from its children (the DC-tree's delete path does exactly that).
    #[inline]
    #[must_use]
    pub fn subtract(&mut self, value: Measure) -> bool {
        debug_assert!(self.count > 0, "subtract from empty summary");
        self.sum -= value;
        self.count -= 1;
        if self.count == 0 {
            *self = MeasureSummary::empty();
            return true;
        }
        value != self.min && value != self.max
    }

    /// Extracts the scalar answer for one aggregation operator.
    ///
    /// Returns `None` for `Min`/`Max`/`Avg` over an empty selection
    /// (SQL would return NULL); `Sum` and `Count` of an empty selection are
    /// `Some(0.0)` to match the running-total style of the paper's Fig. 7.
    pub fn eval(&self, op: AggregateOp) -> Option<f64> {
        match op {
            AggregateOp::Sum => Some(self.sum as f64),
            AggregateOp::Count => Some(self.count as f64),
            AggregateOp::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum as f64 / self.count as f64)
                }
            }
            AggregateOp::Min => (self.count > 0).then_some(self.min as f64),
            AggregateOp::Max => (self.count > 0).then_some(self.max as f64),
        }
    }
}

impl Default for MeasureSummary {
    fn default() -> Self {
        MeasureSummary::empty()
    }
}

impl FromIterator<Measure> for MeasureSummary {
    fn from_iter<T: IntoIterator<Item = Measure>>(iter: T) -> Self {
        let mut s = MeasureSummary::empty();
        for v in iter {
            s.add(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_identity() {
        let mut a = MeasureSummary::of(5);
        a.merge(&MeasureSummary::empty());
        assert_eq!(a, MeasureSummary::of(5));
    }

    #[test]
    fn merge_matches_bulk_build() {
        let left: MeasureSummary = [1i64, -3, 7].into_iter().collect();
        let right: MeasureSummary = [10i64, 2].into_iter().collect();
        let all: MeasureSummary = [1i64, -3, 7, 10, 2].into_iter().collect();
        assert_eq!(left.merged(&right), all);
    }

    #[test]
    fn eval_all_operators() {
        let s: MeasureSummary = [2i64, 4, 6].into_iter().collect();
        assert_eq!(s.eval(AggregateOp::Sum), Some(12.0));
        assert_eq!(s.eval(AggregateOp::Count), Some(3.0));
        assert_eq!(s.eval(AggregateOp::Avg), Some(4.0));
        assert_eq!(s.eval(AggregateOp::Min), Some(2.0));
        assert_eq!(s.eval(AggregateOp::Max), Some(6.0));
    }

    #[test]
    fn eval_empty_selection() {
        let s = MeasureSummary::empty();
        assert_eq!(s.eval(AggregateOp::Sum), Some(0.0));
        assert_eq!(s.eval(AggregateOp::Count), Some(0.0));
        assert_eq!(s.eval(AggregateOp::Avg), None);
        assert_eq!(s.eval(AggregateOp::Min), None);
        assert_eq!(s.eval(AggregateOp::Max), None);
    }

    #[test]
    fn subtract_interior_value_keeps_extrema() {
        let mut s: MeasureSummary = [1i64, 5, 9].into_iter().collect();
        assert!(s.subtract(5));
        assert_eq!(s.sum, 10);
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
    }

    #[test]
    fn subtract_extremum_flags_recompute() {
        let mut s: MeasureSummary = [1i64, 5, 9].into_iter().collect();
        assert!(!s.subtract(9));
        assert_eq!(s.sum, 6);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn subtract_to_empty_resets() {
        let mut s = MeasureSummary::of(7);
        assert!(s.subtract(7));
        assert_eq!(s, MeasureSummary::empty());
    }
}
