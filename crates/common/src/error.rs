//! The workspace-wide error type.
//!
//! Kept dependency-free (no `thiserror`): a plain enum with manual
//! `Display`/`Error` implementations, per the workspace dependency policy in
//! `DESIGN.md`.

use std::fmt;
use std::io;

use crate::id::{DimensionId, Level, ValueId};

/// Convenient result alias used across the workspace.
pub type DcResult<T> = Result<T, DcError>;

/// Errors produced by the DC-tree workspace crates.
#[derive(Debug)]
pub enum DcError {
    /// A record or query referenced a dimension the cube schema does not have.
    DimensionMismatch {
        /// Number of dimensions the structure was built with.
        expected: usize,
        /// Number of dimensions supplied.
        got: usize,
    },
    /// A `ValueId` was used with a hierarchy that never issued it.
    UnknownValue { dim: DimensionId, id: ValueId },
    /// A dimension path (root→leaf attribute chain) had the wrong length.
    BadPathLength {
        dim: DimensionId,
        expected: usize,
        got: usize,
    },
    /// Asked for an ancestor above the root or below the value itself.
    BadLevel {
        dim: DimensionId,
        id: ValueId,
        requested: Level,
    },
    /// A hierarchy level overflowed the 4-bit encoding or a level index the
    /// 28-bit encoding.
    IdSpaceExhausted { dim: DimensionId, level: Level },
    /// MDS operands disagreed on dimensionality or levels in a way that the
    /// adaptation rules cannot reconcile.
    IncomparableMds(String),
    /// A record to be deleted was not found in the index.
    RecordNotFound,
    /// A persisted tree image was malformed.
    Corrupt(String),
    /// A configuration was invalid or inconsistent with persisted state
    /// (e.g. reopening a checkpoint taken with a different shard count).
    Config(String),
    /// A deterministic fault injected by a test harness (`dc-durable`'s
    /// `FaultFs`): the emulated process is considered crashed and must be
    /// recovered before further I/O.
    Fault(String),
    /// Underlying I/O failure while persisting or loading.
    Io(io::Error),
}

impl fmt::Display for DcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension count mismatch: structure has {expected}, input has {got}"
                )
            }
            DcError::UnknownValue { dim, id } => {
                write!(f, "value {id} was never registered in {dim}")
            }
            DcError::BadPathLength { dim, expected, got } => {
                write!(
                    f,
                    "{dim}: attribute path must have {expected} entries, got {got}"
                )
            }
            DcError::BadLevel { dim, id, requested } => {
                write!(f, "{dim}: level {requested} is invalid for {id}")
            }
            DcError::IdSpaceExhausted { dim, level } => {
                write!(f, "{dim}: ID space exhausted on level {level}")
            }
            DcError::IncomparableMds(msg) => write!(f, "incomparable MDS operands: {msg}"),
            DcError::RecordNotFound => f.write_str("record not found"),
            DcError::Corrupt(msg) => write!(f, "corrupt tree image: {msg}"),
            DcError::Config(msg) => write!(f, "configuration error: {msg}"),
            DcError::Fault(msg) => write!(f, "injected fault: {msg}"),
            DcError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DcError {
    fn from(e: io::Error) -> Self {
        DcError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DcError::DimensionMismatch {
            expected: 4,
            got: 3,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("3"));
        let e = DcError::UnknownValue {
            dim: DimensionId(1),
            id: ValueId::new(2, 9),
        };
        assert!(e.to_string().contains("dim1"));
    }

    #[test]
    fn config_and_fault_variants_display() {
        let e = DcError::Config("2 shards in checkpoint, 4 configured".into());
        assert!(e.to_string().contains("configuration"));
        let e = DcError::Fault("crash after 512 WAL bytes".into());
        assert!(e.to_string().contains("injected fault"));
    }

    #[test]
    fn io_error_wraps_with_source() {
        use std::error::Error as _;
        let e: DcError = io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
