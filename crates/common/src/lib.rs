//! # dc-common
//!
//! Shared vocabulary for the DC-tree workspace: the 32-bit attribute-value
//! ID encoding of the paper (§3.1), dimension handles, the fixed-point
//! measure type, mergeable aggregate summaries, aggregation operators, and
//! the common error type.
//!
//! Everything here is deliberately dependency-free so that every other crate
//! in the workspace can build on it.

pub mod error;
pub mod id;
pub mod measure;

pub use error::{DcError, DcResult};
pub use id::{DimensionId, Level, RecordId, ValueId};
pub use measure::{AggregateOp, Measure, MeasureSummary};
