//! Attribute-value identifiers.
//!
//! The DC-tree paper (§3.1) represents every attribute value of a concept
//! hierarchy by a 32-bit integer whose *highest four bits* encode the
//! hierarchy level of the value, "to distinguish IDs from different levels".
//! The remaining 28 bits are a sequence number assigned in insertion order
//! within one (dimension, level) pair — that insertion order is exactly the
//! total ordering the paper later uses to map MDSs onto X-tree MBRs (§5.2).

use std::fmt;

/// Number of bits reserved for the hierarchy level (the paper uses the
/// "highest four bits" of the 32-bit ID).
pub const LEVEL_BITS: u32 = 4;
/// Number of bits available for the per-level sequence number.
pub const INDEX_BITS: u32 = 32 - LEVEL_BITS;
/// Maximum representable hierarchy level (inclusive).
pub const MAX_LEVEL: u8 = (1 << LEVEL_BITS) - 1;
/// Maximum representable per-level index (inclusive).
pub const MAX_INDEX: u32 = (1 << INDEX_BITS) - 1;

/// A hierarchy level. Leaves are level `0` (Definition 1: "the leaves have a
/// hierarchy level of 0"); the root `ALL` sits at the top level of its
/// dimension.
pub type Level = u8;

/// A 32-bit attribute-value identifier: 4 level bits + 28 index bits.
///
/// `ValueId`s are only meaningful relative to the [`ConceptHierarchy`] of one
/// dimension; comparing IDs from different dimensions is a logic error that
/// the higher layers guard against.
///
/// The derived `Ord` orders first by level (because the level occupies the
/// high bits) and then by insertion order within the level. Within a single
/// level — the only situation in which the DC-tree compares IDs — this *is*
/// the paper's artificial total order.
///
/// [`ConceptHierarchy`]: https://docs.rs/dc-hierarchy
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(u32);

impl ValueId {
    /// Builds an ID from a level and a per-level index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in 28 bits (more than ~268 M values on
    /// one hierarchy level) — a capacity the paper's 4-byte encoding shares.
    #[inline]
    pub fn new(level: Level, index: u32) -> Self {
        assert!(
            level <= MAX_LEVEL,
            "hierarchy level {level} exceeds 4-bit encoding"
        );
        assert!(
            index <= MAX_INDEX,
            "per-level index {index} exceeds 28-bit encoding"
        );
        ValueId(((level as u32) << INDEX_BITS) | index)
    }

    /// The hierarchy level encoded in the high four bits.
    #[inline]
    pub fn level(self) -> Level {
        (self.0 >> INDEX_BITS) as Level
    }

    /// The per-(dimension, level) sequence number.
    #[inline]
    pub fn index(self) -> u32 {
        self.0 & MAX_INDEX
    }

    /// The raw 32-bit representation (used by the storage codec and as the
    /// X-tree coordinate in the MDS→MBR conversion of §5.2).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an ID from its raw representation.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        ValueId(raw)
    }
}

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}@L{}", self.index(), self.level())
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Index of a dimension within a data cube (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DimensionId(pub u16);

impl DimensionId {
    /// The dimension index as a `usize`, for slice addressing.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DimensionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dim{}", self.0)
    }
}

/// Identifier of a data record inside an index structure. Assigned densely
/// in insertion order; stable across queries but recycled after deletion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RecordId(pub u64);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rec{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_level_and_index() {
        for level in [0u8, 1, 7, 15] {
            for index in [0u32, 1, 12345, MAX_INDEX] {
                let id = ValueId::new(level, index);
                assert_eq!(id.level(), level);
                assert_eq!(id.index(), index);
                assert_eq!(ValueId::from_raw(id.raw()), id);
            }
        }
    }

    #[test]
    fn ordering_within_level_follows_insertion_order() {
        let a = ValueId::new(2, 10);
        let b = ValueId::new(2, 11);
        assert!(a < b);
    }

    #[test]
    fn level_occupies_high_bits() {
        // An ID on a higher level always compares greater than any ID on a
        // lower level — the encoding "distinguish[es] IDs from different
        // levels" structurally.
        let low = ValueId::new(1, MAX_INDEX);
        let high = ValueId::new(2, 0);
        assert!(low < high);
    }

    #[test]
    #[should_panic(expected = "exceeds 4-bit")]
    fn level_overflow_panics() {
        let _ = ValueId::new(16, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 28-bit")]
    fn index_overflow_panics() {
        let _ = ValueId::new(0, MAX_INDEX + 1);
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", ValueId::new(3, 42)), "v42@L3");
    }
}
