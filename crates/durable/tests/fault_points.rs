//! Deterministic fault-point sweep over [`DurableDcTree`]: crash the
//! store at a grid of byte offsets (plus fsync failures and bit flips),
//! recover from the surviving files, and check the result against a
//! never-crashed oracle.
//!
//! The contract being proven, for every fault point:
//!
//! * the recovered state equals the oracle run over some prefix of `P`
//!   operations (never a subset, never an interleaving);
//! * `synced_lsn_at_crash <= P <= attempted` — nothing durable is lost,
//!   nothing unattempted appears;
//! * with checkpoints enabled, `recovery_replayed_entries < total`.
//!
//! The sync policy is selected by `DC_SYNC_POLICY` (`always` | `every4` |
//! `group`) so CI can run the sweep as a matrix; everything else is fixed
//! by seed.

use dc_common::DcError;
use dc_durable::{DurabilityConfig, DurableDcTree, FaultFs, FaultPlan, SyncPolicy};
use dc_hierarchy::{CubeSchema, HierarchySchema};
use dc_mds::Mds;
use dc_tree::{DcTree, DcTreeConfig};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

fn schema() -> CubeSchema {
    CubeSchema::new(
        vec![
            HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
            HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
        ],
        "Revenue",
    )
}

fn make_tree() -> DcTree {
    DcTree::new(
        schema(),
        DcTreeConfig {
            dir_capacity: 4,
            data_capacity: 4,
            ..DcTreeConfig::default()
        },
    )
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("dc-fault-points")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64, i64),
    Delete(u64, i64),
}

fn paths(i: u64) -> [Vec<String>; 2] {
    [
        vec![format!("R{}", i % 3), format!("R{}-N{}", i % 3, i % 7)],
        vec![
            format!("199{}", i % 4),
            format!("199{}-{:02}", i % 4, i % 12 + 1),
        ],
    ]
}

fn workload(n: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(0xFA17);
    (0..n)
        .map(|_| {
            let key = rng.gen_range(0..40);
            let measure = rng.gen_range(0..100);
            if rng.gen_bool(0.8) {
                Op::Insert(key, measure)
            } else {
                Op::Delete(key, measure)
            }
        })
        .collect()
}

/// The oracle: a plain tree after the first `prefix` operations.
fn oracle(ops: &[Op], prefix: usize) -> DcTree {
    let mut tree = make_tree();
    for op in &ops[..prefix] {
        match *op {
            Op::Insert(key, m) => {
                tree.insert_raw(&paths(key), m).unwrap();
            }
            Op::Delete(key, m) => {
                let entry = dc_durable::WalEntry::Delete {
                    paths: paths(key).to_vec(),
                    measure: m,
                };
                dc_durable::apply(&mut tree, &entry).unwrap();
            }
        }
    }
    tree
}

fn sync_policy() -> SyncPolicy {
    match std::env::var("DC_SYNC_POLICY").as_deref() {
        Ok("every4") => SyncPolicy::EveryN(4),
        // An hour-long cadence: the store syncs only on explicit barriers,
        // which this harness never issues — maximum exposure.
        Ok("group") => SyncPolicy::GroupCommitMs(3_600_000),
        _ => SyncPolicy::Always,
    }
}

fn config(checkpoint_every: u64) -> DurabilityConfig {
    DurabilityConfig {
        sync: sync_policy(),
        checkpoint_every,
        segment_bytes: 1024, // small budget: sweeps cross many rotations
    }
}

/// Runs `ops` against a fault-injected store until a fault (or the end).
/// Returns `(attempted, synced_lsn_at_crash)`.
fn run_until_fault(
    dir: &std::path::Path,
    ops: &[Op],
    fs: &FaultFs,
    cfg: DurabilityConfig,
) -> (u64, u64) {
    let store = DurableDcTree::open_with_fs(Arc::new(fs.clone()), dir, make_tree, cfg);
    let mut store = match store {
        Ok(s) => s,
        Err(DcError::Fault(_)) => return (0, 0),
        Err(e) => panic!("unexpected open error: {e}"),
    };
    for (i, op) in ops.iter().enumerate() {
        let result = match *op {
            Op::Insert(key, m) => store.insert_raw(&paths(key), m).map(|_| ()),
            Op::Delete(key, m) => store.delete_raw(&paths(key), m).map(|_| ()),
        };
        match result {
            Ok(()) => {}
            Err(DcError::Fault(_)) => return (i as u64 + 1, store.synced_lsn()),
            Err(e) => panic!("unexpected mutation error: {e}"),
        }
    }
    (ops.len() as u64, store.synced_lsn())
}

/// Recovers `dir` on the clean filesystem and checks it equals the oracle
/// over the prefix recovery claims, within `[synced, attempted]`.
fn check_recovery(
    dir: &std::path::Path,
    ops: &[Op],
    attempted: u64,
    synced: u64,
) -> dc_durable::RecoveryReport {
    let store = DurableDcTree::open(dir, make_tree, DurabilityConfig::default())
        .expect("recovery must succeed on the real fs");
    let report = store.recovery_report();
    let prefix = report.checkpoint_lsn + report.replayed_entries;
    assert!(
        synced <= prefix && prefix <= attempted,
        "recovered prefix {prefix} outside [{synced}, {attempted}]"
    );
    let expected = oracle(ops, prefix as usize);
    assert_eq!(store.tree().len(), expected.len(), "prefix {prefix}");
    let q = Mds::all(store.tree().schema());
    assert_eq!(
        store.tree().range_summary(&q).unwrap(),
        expected.range_summary(&q).unwrap(),
        "prefix {prefix}"
    );
    store.tree().check_invariants().unwrap();
    report
}

/// Total WAL bytes the full workload writes (dry run, faults disabled).
fn total_wal_bytes(ops: &[Op], cfg: DurabilityConfig, name: &str) -> u64 {
    let dir = fresh_dir(name);
    let fs = FaultFs::new(FaultPlan::default());
    let (attempted, _) = run_until_fault(&dir, ops, &fs, cfg);
    assert_eq!(attempted, ops.len() as u64, "dry run must not fault");
    let written = fs.written();
    std::fs::remove_dir_all(&dir).ok();
    written
}

#[test]
fn crash_sweep_over_byte_offsets() {
    let ops = workload(120);
    let cfg = config(0);
    let total = total_wal_bytes(&ops, cfg, "sweep-dry");
    assert!(total > 4096, "workload too small to sweep ({total} bytes)");
    // ~48 crash points: a uniform stride plus ±1 to land just before and
    // just after frame boundaries the stride would straddle.
    let stride = total / 16;
    let mut offsets = Vec::new();
    for k in 0..16 {
        let base = k * stride + 1;
        offsets.extend([base, base + 1, base + stride / 2]);
    }
    for offset in offsets {
        let dir = fresh_dir(&format!("sweep-{offset}"));
        let fs = FaultFs::new(FaultPlan {
            crash_after_bytes: Some(offset),
            ..FaultPlan::default()
        });
        let (attempted, synced) = run_until_fault(&dir, &ops, &fs, cfg);
        assert!(fs.crashed(), "offset {offset} must crash mid-workload");
        check_recovery(&dir, &ops, attempted, synced);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Runs an insert-only workload through [`DurableDcTree::insert_batch_raw`]
/// in uneven batches (3, 1, 8, 5, …) until a fault. Returns
/// `(attempted_records, synced_lsn_at_crash)` — `attempted` counts records,
/// not batches: a fault inside a group means every record of that group was
/// attempted, and recovery may keep any clean prefix of it.
fn run_batched_until_fault(
    dir: &std::path::Path,
    ops: &[Op],
    fs: &FaultFs,
    cfg: DurabilityConfig,
) -> (u64, u64) {
    let store = DurableDcTree::open_with_fs(Arc::new(fs.clone()), dir, make_tree, cfg);
    let mut store = match store {
        Ok(s) => s,
        Err(DcError::Fault(_)) => return (0, 0),
        Err(e) => panic!("unexpected open error: {e}"),
    };
    let mut i = 0usize;
    let mut sizes = [3usize, 1, 8, 5].iter().cycle();
    while i < ops.len() {
        let n = (*sizes.next().unwrap()).min(ops.len() - i);
        let batch: Vec<_> = ops[i..i + n]
            .iter()
            .map(|op| match *op {
                Op::Insert(key, m) => (paths(key).to_vec(), m),
                Op::Delete(..) => unreachable!("the batched sweep is insert-only"),
            })
            .collect();
        match store.insert_batch_raw(&batch) {
            Ok(ids) => {
                assert_eq!(ids.len(), n);
                i += n;
            }
            Err(DcError::Fault(_)) => return ((i + n) as u64, store.synced_lsn()),
            Err(e) => panic!("unexpected batch error: {e}"),
        }
    }
    (ops.len() as u64, store.synced_lsn())
}

#[test]
fn crash_sweep_at_batch_boundaries() {
    // The batched commit path under the same contract as the
    // record-at-a-time sweep: synced ≤ recovered ≤ attempted, for crash
    // points landing before, inside, and after WAL frame groups, under
    // whichever sync policy `DC_SYNC_POLICY` selects. A torn group must
    // recover a clean *record* prefix — group atomicity is not promised,
    // losing durable records is forbidden.
    let ops: Vec<Op> = workload(140)
        .into_iter()
        .map(|op| match op {
            Op::Insert(..) => op,
            Op::Delete(k, m) => Op::Insert(k, m),
        })
        .collect();
    let cfg = config(0);
    let total = {
        let dir = fresh_dir("batch-dry");
        let fs = FaultFs::new(FaultPlan::default());
        let (attempted, _) = run_batched_until_fault(&dir, &ops, &fs, cfg);
        assert_eq!(attempted, ops.len() as u64, "dry run must not fault");
        let written = fs.written();
        std::fs::remove_dir_all(&dir).ok();
        written
    };
    assert!(total > 4096, "workload too small to sweep ({total} bytes)");
    let stride = total / 12;
    let mut offsets = Vec::new();
    for k in 0..12 {
        let base = k * stride + 1;
        offsets.extend([base, base + 1, base + stride / 2]);
    }
    for offset in offsets {
        let dir = fresh_dir(&format!("batch-{offset}"));
        let fs = FaultFs::new(FaultPlan {
            crash_after_bytes: Some(offset),
            ..FaultPlan::default()
        });
        let (attempted, synced) = run_batched_until_fault(&dir, &ops, &fs, cfg);
        assert!(fs.crashed(), "offset {offset} must crash mid-workload");
        check_recovery(&dir, &ops, attempted, synced);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn crash_sweep_with_checkpoints_bounds_replay() {
    let ops = workload(120);
    let cfg = config(25);
    let total = total_wal_bytes(&ops, cfg, "ckpt-dry");
    // Crash points in the back half, where checkpoints have happened.
    for k in 1..8 {
        let offset = total / 2 + k * (total / 16);
        let dir = fresh_dir(&format!("ckpt-{offset}"));
        let fs = FaultFs::new(FaultPlan {
            crash_after_bytes: Some(offset),
            ..FaultPlan::default()
        });
        let (attempted, synced) = run_until_fault(&dir, &ops, &fs, cfg);
        assert!(fs.crashed());
        let report = check_recovery(&dir, &ops, attempted, synced);
        assert!(
            report.checkpoint_lsn > 0,
            "offset {offset}: a checkpoint must be live"
        );
        assert!(
            report.replayed_entries < ops.len() as u64,
            "checkpoint must bound the replay"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn failed_fsyncs_never_lose_synced_writes() {
    let ops = workload(80);
    let cfg = config(0);
    // Lazy policies issue far fewer fsyncs than there are appends, so count
    // the syncs a clean run makes and spread the fault points across that
    // range instead of hard-coding append-based positions.
    let total_syncs = {
        let dir = fresh_dir("fsync-dry");
        let fs = FaultFs::new(FaultPlan::default());
        let (attempted, _) = run_until_fault(&dir, &ops, &fs, cfg);
        assert_eq!(attempted, ops.len() as u64, "dry run must not fault");
        let syncs = fs.synced();
        std::fs::remove_dir_all(&dir).ok();
        syncs
    };
    assert!(total_syncs > 0, "the workload must fsync at least once");
    let nths: Vec<u64> = [1, 4, 12, 23, 47]
        .into_iter()
        .map(|k: u64| 1 + (k - 1) * total_syncs.saturating_sub(1) / 46)
        .collect();
    for nth in nths {
        let dir = fresh_dir(&format!("fsync-{nth}"));
        let fs = FaultFs::new(FaultPlan {
            fail_sync: Some(nth),
            ..FaultPlan::default()
        });
        let (attempted, synced) = run_until_fault(&dir, &ops, &fs, cfg);
        assert!(fs.crashed(), "fsync #{nth} must fire");
        check_recovery(&dir, &ops, attempted, synced);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn bit_flips_recover_to_a_clean_prefix() {
    let ops = workload(100);
    let cfg = config(0);
    let total = total_wal_bytes(&ops, cfg, "flip-dry");
    for k in 1..10 {
        let offset = k * (total / 10);
        let dir = fresh_dir(&format!("flip-{offset}"));
        let fs = FaultFs::new(FaultPlan {
            flip_bit: Some((offset, 0x10)),
            ..FaultPlan::default()
        });
        // A flip is silent: the workload completes.
        let (attempted, _) = run_until_fault(&dir, &ops, &fs, cfg);
        assert_eq!(attempted, ops.len() as u64);
        assert!(!fs.crashed());
        // Recovery must detect the flip and fall back to a clean prefix —
        // durability of entries past a corrupted-on-disk frame cannot be
        // promised, so the lower bound here is 0, not synced_lsn.
        let report = check_recovery(&dir, &ops, attempted, 0);
        assert!(
            report.truncated_bytes > 0 || report.tail_lost,
            "offset {offset}: the flip must be detected"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
