//! Crash-recovery tests: kill the process state at arbitrary points (drop
//! without checkpoint, torn log tails, checkpoint + tail mixes) and verify
//! the store always reopens to exactly the acknowledged state.

use dc_durable::{segment_file_name, DurabilityConfig, DurableDcTree, SyncPolicy};
use dc_hierarchy::{CubeSchema, HierarchySchema};
use dc_mds::Mds;
use dc_tree::{DcTree, DcTreeConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

fn schema() -> CubeSchema {
    CubeSchema::new(
        vec![
            HierarchySchema::new("Customer", vec!["Region".into(), "Nation".into()]),
            HierarchySchema::new("Time", vec!["Year".into(), "Month".into()]),
        ],
        "Revenue",
    )
}

fn make_tree() -> DcTree {
    DcTree::new(
        schema(),
        DcTreeConfig {
            dir_capacity: 4,
            data_capacity: 4,
            ..DcTreeConfig::default()
        },
    )
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("dc-durable-tests")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn paths(i: u64) -> [Vec<String>; 2] {
    [
        vec![format!("R{}", i % 3), format!("R{}-N{}", i % 3, i % 7)],
        vec![
            format!("199{}", i % 4),
            format!("199{}-{:02}", i % 4, i % 12 + 1),
        ],
    ]
}

/// The segment file the writer currently appends to.
fn live_segment(dir: &std::path::Path) -> std::path::PathBuf {
    let mut seqs: Vec<u64> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            dc_durable::parse_segment_file_name(e.unwrap().file_name().to_str().unwrap())
        })
        .collect();
    seqs.sort_unstable();
    dir.join(segment_file_name(*seqs.last().expect("a live segment")))
}

#[test]
fn reopen_without_checkpoint_replays_the_log() {
    let dir = fresh_dir("replay");
    {
        let mut store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
        for i in 0..60 {
            store.insert_raw(&paths(i), i as i64).unwrap();
        }
        // Dropped without checkpoint: recovery must come from the WAL alone.
    }
    let store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
    assert_eq!(store.tree().len(), 60);
    assert_eq!(store.recovery_report().replayed_entries, 60);
    assert_eq!(store.recovery_report().checkpoint_lsn, 0);
    let q = Mds::all(store.tree().schema());
    assert_eq!(
        store.tree().range_summary(&q).unwrap().sum,
        (0..60).sum::<i64>()
    );
    store.tree().check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_plus_tail_recovers_both_parts() {
    let dir = fresh_dir("mixed");
    {
        let mut store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
        for i in 0..40 {
            store.insert_raw(&paths(i), 1).unwrap();
        }
        store.checkpoint().unwrap();
        assert_eq!(store.log_length(), 0);
        for i in 40..70 {
            store.insert_raw(&paths(i), 1).unwrap();
        }
        // Deletes in the tail too.
        assert!(store.delete_raw(&paths(0), 1).unwrap());
    }
    let store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
    assert_eq!(store.tree().len(), 69);
    let report = store.recovery_report();
    assert_eq!(report.checkpoint_lsn, 40);
    assert_eq!(report.replayed_entries, 31, "only the tail is replayed");
    store.tree().check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_log_tail_is_truncated_on_recovery() {
    let dir = fresh_dir("torn");
    {
        let mut store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
        for i in 0..25 {
            store.insert_raw(&paths(i), 2).unwrap();
        }
    }
    // Simulate a crash mid-append: garbage half-frame at the segment end.
    let wal = live_segment(&dir);
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0x55, 0x00, 0x00, 0x00, 0xAB]).unwrap();
    }
    let store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
    assert_eq!(store.tree().len(), 25, "clean prefix fully recovered");
    assert_eq!(store.recovery_report().truncated_bytes, 5);
    drop(store);
    // The truncation made the file clean: a third open sees no corruption
    // and the same state.
    let store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
    assert_eq!(store.tree().len(), 25);
    assert_eq!(store.recovery_report().truncated_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_is_equivalent_to_never_crashing() {
    // Run the same random workload twice: once continuously, once chopped
    // into sessions with crashes (no checkpoint) between them. Final state
    // must match exactly.
    let dir = fresh_dir("equivalence");
    let mut rng = StdRng::seed_from_u64(7);
    let ops: Vec<(bool, u64, i64)> = (0..200)
        .map(|_| {
            (
                rng.gen_bool(0.75),
                rng.gen_range(0..50),
                rng.gen_range(0..100),
            )
        })
        .collect();

    let mut continuous = make_tree();
    for &(is_insert, key, measure) in &ops {
        if is_insert {
            continuous.insert_raw(&paths(key), measure).unwrap();
        } else {
            let dims: Option<Vec<_>> = (0..2)
                .map(|d| {
                    continuous
                        .schema()
                        .dim(dc_common::DimensionId(d))
                        .lookup_path(&paths(key)[d as usize])
                })
                .collect();
            if let Some(dims) = dims {
                let _ = continuous
                    .delete(&dc_hierarchy::Record::new(dims, measure))
                    .unwrap();
            }
        }
    }

    // Crashy version: reopen every 37 operations, with a tiny segment
    // budget so recovery also crosses rotation boundaries.
    let config = DurabilityConfig {
        sync: SyncPolicy::Always,
        checkpoint_every: 0,
        segment_bytes: 512,
    };
    let mut store = DurableDcTree::open(&dir, make_tree, config).unwrap();
    for (i, &(is_insert, key, measure)) in ops.iter().enumerate() {
        if i % 37 == 36 {
            drop(store);
            store = DurableDcTree::open(&dir, make_tree, config).unwrap();
        }
        if is_insert {
            store.insert_raw(&paths(key), measure).unwrap();
        } else {
            let _ = store.delete_raw(&paths(key), measure).unwrap();
        }
    }
    drop(store);
    let store = DurableDcTree::open(&dir, make_tree, config).unwrap();

    assert_eq!(store.tree().len(), continuous.len());
    let q = Mds::all(store.tree().schema());
    assert_eq!(
        store.tree().range_summary(&q).unwrap(),
        continuous.range_summary(&q).unwrap()
    );
    store.tree().check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auto_checkpoint_bounds_the_log() {
    let dir = fresh_dir("autockpt");
    let config = DurabilityConfig {
        sync: SyncPolicy::EveryN(16),
        checkpoint_every: 10,
        ..DurabilityConfig::default()
    };
    let mut store = DurableDcTree::open(&dir, make_tree, config).unwrap();
    for i in 0..35 {
        store.insert_raw(&paths(i), 1).unwrap();
    }
    assert!(
        store.log_length() < 10,
        "auto-checkpoints must reset the log"
    );
    assert_eq!(store.checkpoints(), 3);
    drop(store);
    let store = DurableDcTree::open(&dir, make_tree, config).unwrap();
    assert_eq!(store.tree().len(), 35);
    let report = store.recovery_report();
    assert_eq!(report.checkpoint_lsn, 30);
    assert_eq!(report.replayed_entries, 5, "checkpoint bounds the replay");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deleting_unknown_records_is_a_replayable_noop() {
    let dir = fresh_dir("noop");
    {
        let mut store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
        store.insert_raw(&paths(1), 5).unwrap();
        assert!(!store.delete_raw(&paths(2), 5).unwrap(), "never inserted");
        assert!(!store.delete_raw(&paths(1), 999).unwrap(), "wrong measure");
    }
    let store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
    assert_eq!(store.tree().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn group_commit_policy_syncs_on_barrier() {
    let dir = fresh_dir("groupcommit");
    let config = DurabilityConfig {
        // An hour-long cadence: only explicit barriers sync.
        sync: SyncPolicy::GroupCommitMs(3_600_000),
        ..DurabilityConfig::default()
    };
    let mut store = DurableDcTree::open(&dir, make_tree, config).unwrap();
    for i in 0..10 {
        store.insert_raw(&paths(i), 1).unwrap();
    }
    assert_eq!(store.last_lsn(), 10);
    assert!(store.synced_lsn() < 10, "no barrier issued yet");
    store.sync().unwrap();
    assert_eq!(store.synced_lsn(), 10);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejected_writes_never_reach_the_log() {
    // Validation runs *before* the append: a record the tree would reject
    // (wrong dimension count, wrong path depth) must leave the WAL
    // untouched, or recovery replays the rejection and the directory can
    // never be reopened.
    let dir = fresh_dir("rejected-writes");
    {
        let mut store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
        store.insert_raw(&paths(0), 10).unwrap();

        let one_dim = [vec!["R0".to_string(), "R0-N0".to_string()]];
        assert!(store.insert_raw(&one_dim, 5).is_err());
        assert!(store.delete_raw(&one_dim, 5).is_err());
        let shallow = [vec!["R0".to_string()], vec!["1990".to_string()]];
        assert!(store.insert_raw(&shallow, 5).is_err());
        let batch = vec![
            (paths(1).to_vec(), 20),
            (one_dim.to_vec(), 7), // poisons the whole batch
        ];
        assert!(store.insert_batch_raw(&batch).is_err());
        assert_eq!(store.last_lsn(), 1, "a rejected write was logged");

        store.insert_raw(&paths(1), 20).unwrap();
        store.sync().unwrap();
    }
    let store = DurableDcTree::open(&dir, make_tree, DurabilityConfig::default()).unwrap();
    assert_eq!(store.tree().len(), 2);
    assert_eq!(store.recovery_report().replayed_entries, 2);
    std::fs::remove_dir_all(&dir).ok();
}
