//! Fuzz-style robustness for the WAL scanner: arbitrary segment bodies
//! never panic, and arbitrary segment *files* recover cleanly through the
//! full directory scanner.

use dc_durable::{segment_file_name, wal::scan_raw_frames, StdFs, WalReader};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary frame-stream bytes: the scanner never panics and always
    /// reports a clean-prefix length within the input.
    #[test]
    fn raw_scan_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let (_, clean) = scan_raw_frames(&bytes);
        prop_assert!(clean <= bytes.len());
    }

    /// Arbitrary bytes dressed up as segment 1: full directory recovery
    /// never panics, never errors, and repairs the directory so a second
    /// scan is clean.
    #[test]
    fn directory_recovery_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let dir = std::env::temp_dir().join(format!(
            "dc-wal-fuzz-{}-{}",
            std::process::id(),
            bytes.len()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(segment_file_name(1)), &bytes).unwrap();
        let scan = WalReader::recover(&StdFs, &dir).unwrap();
        prop_assert!(scan.truncated_bytes <= bytes.len() as u64);
        let entries = scan.entries.len();
        // Post-repair scan: nothing further to discard, same entries.
        let rescan = WalReader::recover(&StdFs, &dir).unwrap();
        prop_assert_eq!(rescan.truncated_bytes, 0);
        prop_assert_eq!(rescan.entries.len(), entries);
        std::fs::remove_dir_all(&dir).ok();
    }
}
