//! Fuzz-style robustness for the WAL scanner: arbitrary log files never
//! panic, and whatever is accepted must re-encode/replay cleanly.

use dc_durable::WalReader;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes on disk: scan never panics and always reports a
    /// clean-prefix length within the file.
    #[test]
    fn scan_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let dir = std::env::temp_dir().join("dc-wal-fuzz");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "fuzz-{}-{}",
            std::process::id(),
            bytes.len()
        ));
        std::fs::write(&path, &bytes).unwrap();
        let scan = WalReader::scan(&path).unwrap();
        prop_assert!(scan.clean_len <= bytes.len() as u64);
        std::fs::remove_file(&path).ok();
    }
}
