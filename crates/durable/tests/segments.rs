//! Segment-level edge cases for WAL recovery: the awkward on-disk states a
//! crash (or an operator with `rm`) can leave behind. Each test manufactures
//! the state with real file surgery, recovers through [`WalReader`], and
//! asserts the repair converges — a second recovery sees a clean directory.

use std::path::{Path, PathBuf};

use dc_durable::{segment_file_name, StdFs, SyncPolicy, WalConfig, WalEntry, WalReader, WalWriter};

fn entry(i: u64) -> WalEntry {
    WalEntry::Insert {
        paths: vec![vec![format!("region-{}", i % 3), format!("cust-{i}")]],
        measure: i as i64 * 10,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dc-seg-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(segment_bytes: u64) -> WalConfig {
    WalConfig {
        segment_bytes,
        sync: SyncPolicy::Always,
    }
}

/// Opens a writer over whatever is in `dir` and appends `entries`.
fn append_all(dir: &Path, cfg: WalConfig, entries: impl Iterator<Item = WalEntry>) {
    let scan = WalReader::recover(&StdFs, dir).unwrap();
    let mut w = WalWriter::open(std::sync::Arc::new(StdFs), dir, cfg, &scan, 0).unwrap();
    for e in entries {
        w.append(&e).unwrap();
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(segment_file_name(seq))
}

/// Shrinks a segment file by `cut` bytes from the end.
fn truncate_tail(path: &Path, cut: u64) {
    let len = std::fs::metadata(path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(len - cut).unwrap();
}

/// Byte offsets where each frame of a segment file starts (frames are
/// `[len u32][crc u32][payload]` after the 28-byte segment header).
fn frame_starts(path: &Path) -> Vec<u64> {
    let bytes = std::fs::read(path).unwrap();
    let mut starts = Vec::new();
    let mut at = dc_durable::SEGMENT_HEADER_LEN;
    while at + 8 <= bytes.len() {
        starts.push(at as u64);
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 8 + len;
    }
    starts
}

/// A zero-byte segment after the live tail (created, never written — e.g. a
/// crash between `create_append` and the header write) is discarded, and the
/// next writer skips past its sequence number.
#[test]
fn empty_segment_file_is_discarded() {
    let dir = temp_dir("empty");
    append_all(&dir, config(1 << 20), (0..3).map(entry));
    std::fs::write(segment_path(&dir, 2), b"").unwrap();

    let scan = WalReader::recover(&StdFs, &dir).unwrap();
    assert_eq!(scan.entries.len(), 3);
    assert_eq!(scan.max_seq_seen, 2);
    assert!(!segment_path(&dir, 2).exists(), "empty segment not retired");

    // A writer opened from this scan must not reuse the burned number.
    let mut w =
        WalWriter::open(std::sync::Arc::new(StdFs), &dir, config(1 << 20), &scan, 0).unwrap();
    w.append(&entry(3)).unwrap();
    drop(w);
    assert!(segment_path(&dir, 3).exists());
    let rescan = WalReader::recover(&StdFs, &dir).unwrap();
    assert_eq!(rescan.entries.len(), 4);
    assert_eq!(rescan.truncated_bytes, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn write that leaves only part of the 8-byte frame header (the state a
/// crash mid-`write` produces at a segment tail, including right at a
/// rotation boundary where the frame would have opened the next segment).
#[test]
fn split_frame_header_at_the_tail_is_truncated() {
    let dir = temp_dir("split");
    append_all(&dir, config(1 << 20), (0..3).map(entry));
    let full_len = std::fs::metadata(segment_path(&dir, 1)).unwrap().len();
    let third_frame = frame_starts(&segment_path(&dir, 1))[2];
    let clean_len = third_frame; // last complete frame ends here
                                 // Keep 5 of the third frame's 8 header bytes: len field + one crc byte.
    truncate_tail(&segment_path(&dir, 1), full_len - third_frame - 5);

    let scan = WalReader::recover(&StdFs, &dir).unwrap();
    assert_eq!(scan.entries.len(), 2);
    assert_eq!(scan.truncated_bytes, 5);
    assert_eq!(
        std::fs::metadata(segment_path(&dir, 1)).unwrap().len(),
        clean_len,
        "repair must cut back to the last complete frame"
    );
    let rescan = WalReader::recover(&StdFs, &dir).unwrap();
    assert_eq!(rescan.entries.len(), 2);
    assert_eq!(rescan.truncated_bytes, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A frame whose header (length *and* CRC of the full payload) is intact but
/// whose payload bytes stop short: the CRC would verify if the bytes were
/// there, so the scanner must bound-check the length before trusting it.
#[test]
fn crc_valid_but_short_payload_is_torn() {
    let dir = temp_dir("short");
    append_all(&dir, config(1 << 20), (0..3).map(entry));
    // Chop 3 payload bytes off the third frame, leaving its header claiming
    // more than the file holds.
    truncate_tail(&segment_path(&dir, 1), 3);

    let scan = WalReader::recover(&StdFs, &dir).unwrap();
    assert_eq!(scan.entries.len(), 2, "short frame must not be replayed");
    assert!(scan.truncated_bytes > 0);
    let rescan = WalReader::recover(&StdFs, &dir).unwrap();
    assert_eq!(rescan.entries.len(), 2);
    assert_eq!(rescan.truncated_bytes, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A live segment deleted out from under the manifest (disk trouble, stray
/// `rm`): recovery keeps the entries before the gap, retires everything
/// after it — later segments cannot be ordered across the hole — and
/// reports the loss via `tail_lost`.
#[test]
fn segment_deleted_under_the_manifest_stops_at_the_gap() {
    let dir = temp_dir("gap");
    // Tiny budget so the workload spans several segments.
    append_all(&dir, config(96), (0..12).map(entry));
    let full = WalReader::recover(&StdFs, &dir).unwrap();
    assert!(full.max_seq_seen >= 3, "workload must span >= 3 segments");
    assert_eq!(full.entries.len(), 12);

    std::fs::remove_file(segment_path(&dir, 2)).unwrap();
    let scan = WalReader::recover(&StdFs, &dir).unwrap();
    assert!(scan.tail_lost);
    assert!(scan.entries.len() < 12);
    for seq in 3..=full.max_seq_seen {
        assert!(
            !segment_path(&dir, seq).exists(),
            "segment {seq} survived past the gap"
        );
    }
    let rescan = WalReader::recover(&StdFs, &dir).unwrap();
    assert_eq!(rescan.entries.len(), scan.entries.len());
    assert!(!rescan.tail_lost);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The degenerate gap: the *first* live segment is gone. Nothing after it can
/// be trusted, so recovery falls back to the checkpoint alone.
#[test]
fn first_live_segment_deleted_recovers_to_the_checkpoint() {
    let dir = temp_dir("first");
    append_all(&dir, config(96), (0..12).map(entry));
    let full = WalReader::recover(&StdFs, &dir).unwrap();
    assert!(full.max_seq_seen >= 3);

    std::fs::remove_file(segment_path(&dir, 1)).unwrap();
    let scan = WalReader::recover(&StdFs, &dir).unwrap();
    assert!(scan.tail_lost);
    assert_eq!(scan.entries.len(), 0);
    assert_eq!(scan.recovered_through(), 0);

    // A fresh writer starts over past every burned sequence number.
    append_all(&dir, config(96), (0..2).map(entry));
    let rescan = WalReader::recover(&StdFs, &dir).unwrap();
    assert_eq!(rescan.entries.len(), 2);
    assert!(!rescan.tail_lost);
    let _ = std::fs::remove_dir_all(&dir);
}
