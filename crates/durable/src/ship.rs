//! Segment shipping: the read side of WAL replication.
//!
//! A primary exposes its WAL directory to followers through two fetch
//! operations:
//!
//! * [`fetch_segments`] — every live segment holding LSNs `>= from_lsn`,
//!   each trimmed to its clean frame prefix, or a
//!   [`FetchOutcome::NeedCheckpoint`] redirect when the requested position
//!   has been garbage-collected by a checkpoint (the segments that held it
//!   are gone, so the follower must re-bootstrap from the images instead);
//! * [`fetch_checkpoint`] — the manifest plus the checkpoint images it
//!   points at: the follower's bootstrap state.
//!
//! Both are plain directory reads through [`WalFs`], safe to run
//! concurrently with the writer. Appends only ever grow a segment file, so
//! a racing read at worst sees a torn tail frame — which the scan trims,
//! exactly as recovery would; the next fetch picks up the rest. A
//! checkpoint that deletes segments mid-fetch surfaces as a vanished file,
//! which redirects to the new checkpoint instead of shipping around a
//! hole. The invariant both callers and the GC property test rely on: a
//! fetch returns either a redirect or an LSN-continuous run of frames —
//! never a silent gap.

use std::path::Path;

use dc_common::{DcError, DcResult};

use crate::fs::WalFs;
use crate::segment::{
    checkpoint_file_name, decode_segment_header, parse_segment_file_name, segment_file_name,
    Manifest,
};
use crate::wal::{scan_frames, WalEntry};

/// One shipped segment: its sequence number, the LSN of its first frame,
/// and the clean (CRC-valid, fully framed) prefix of its bytes — header
/// included, so the follower's copy of the file is byte-identical to the
/// primary's clean prefix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SegmentShipment {
    /// The segment's sequence number (its file name).
    pub seq: u64,
    /// LSN of the segment's first frame (from its header).
    pub first_lsn: u64,
    /// Header plus the clean frame prefix.
    pub bytes: Vec<u8>,
}

impl SegmentShipment {
    /// Decodes the shipped frames as `(lsn, entry)` pairs, in LSN order.
    pub fn entries(&self) -> Vec<(u64, WalEntry)> {
        let mut entries = Vec::new();
        scan_frames(&self.bytes, self.first_lsn, 0, &mut entries);
        entries
            .into_iter()
            .enumerate()
            .map(|(i, e)| (self.first_lsn + i as u64, e))
            .collect()
    }

    /// The LSN the frame *after* this shipment would get.
    pub fn next_lsn(&self) -> u64 {
        let mut scratch = Vec::new();
        let (_, _, next) = scan_frames(&self.bytes, self.first_lsn, u64::MAX, &mut scratch);
        next
    }
}

/// What a segment fetch produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FetchOutcome {
    /// The requested LSN is at or below the newest checkpoint: the
    /// segments that held it are eligible for (or already gone to) GC.
    /// The follower must install the checkpoint images first, then fetch
    /// again from `checkpoint_lsn + 1`.
    NeedCheckpoint {
        /// The checkpoint the follower should bootstrap from.
        checkpoint_lsn: u64,
    },
    /// An LSN-continuous run of segments covering `from_lsn` up to the
    /// primary's clean tip (empty when the primary has nothing at or past
    /// `from_lsn`).
    Segments(Vec<SegmentShipment>),
}

/// The follower's bootstrap state: the manifest and the checkpoint images
/// it points at, in shard order. Empty images (with a zero
/// `checkpoint_lsn`) mean the primary has never checkpointed — the
/// follower starts from an empty engine and replays segments from LSN 1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckpointBundle {
    /// The manifest in effect (defaults when the primary has none yet).
    pub manifest: Manifest,
    /// `(shard, image bytes)` per image; `None` for the unsharded image of
    /// a [`DurableDcTree`](crate::DurableDcTree).
    pub images: Vec<(Option<u32>, Vec<u8>)>,
}

/// Fetches the live segments holding LSNs `>= from_lsn` from the WAL
/// directory at `dir`. See the module docs for the concurrency contract.
pub fn fetch_segments(fs: &dyn WalFs, dir: &Path, from_lsn: u64) -> DcResult<FetchOutcome> {
    let from_lsn = from_lsn.max(1);
    let manifest = Manifest::load(fs, dir)?.unwrap_or(Manifest {
        checkpoint_lsn: 0,
        start_seq: 1,
        shards: 0,
    });
    if from_lsn <= manifest.checkpoint_lsn {
        return Ok(FetchOutcome::NeedCheckpoint {
            checkpoint_lsn: manifest.checkpoint_lsn,
        });
    }
    let mut seqs: Vec<u64> = fs
        .list(dir)
        .unwrap_or_default()
        .iter()
        .filter_map(|n| parse_segment_file_name(n))
        .filter(|&s| s >= manifest.start_seq)
        .collect();
    seqs.sort_unstable();
    // Walk the chain exactly like recovery does: LSN continuity (not seq
    // contiguity) decides how far the shippable prefix reaches. Anything
    // past a torn tail, a corrupt header, or an LSN gap cannot be ordered
    // after what we kept, so the fetch stops there — the follower gets a
    // shorter run, never a gapped one.
    let mut next_lsn = manifest.checkpoint_lsn + 1;
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    for &seq in &seqs {
        let Some(mut bytes) = fs.read(&dir.join(segment_file_name(seq)))? else {
            // Vanished between list and read: a concurrent checkpoint
            // GC'd it. Redirect through the new manifest rather than
            // shipping around the hole.
            let m = Manifest::load(fs, dir)?.unwrap_or(manifest);
            return Ok(FetchOutcome::NeedCheckpoint {
                checkpoint_lsn: m.checkpoint_lsn,
            });
        };
        let Some((hseq, first_lsn)) = decode_segment_header(&bytes) else {
            break; // torn or corrupt header — the chain ends here
        };
        if hseq != seq || first_lsn > next_lsn {
            break; // mislabeled file or an LSN gap
        }
        scratch.clear();
        // `checkpoint_lsn = MAX` keeps the scratch empty: this pass only
        // needs the clean length and the next LSN, not decoded entries.
        let (_, clean_len, next) = scan_frames(&bytes, first_lsn, u64::MAX, &mut scratch);
        let torn = clean_len < bytes.len();
        if next > from_lsn {
            bytes.truncate(clean_len);
            out.push(SegmentShipment {
                seq,
                first_lsn,
                bytes,
            });
        }
        next_lsn = next_lsn.max(next);
        if torn {
            break; // nothing after a torn segment can be continuous
        }
    }
    Ok(FetchOutcome::Segments(out))
}

/// Fetches the newest checkpoint (manifest + images) from the WAL
/// directory at `dir`. Retries around a concurrent checkpoint swap — the
/// manifest commit and the old-image deletion are separate steps, so an
/// image can vanish mid-read; the retry re-reads the manifest and fetches
/// the replacement set instead.
pub fn fetch_checkpoint(fs: &dyn WalFs, dir: &Path) -> DcResult<CheckpointBundle> {
    const ATTEMPTS: usize = 8;
    for _ in 0..ATTEMPTS {
        let manifest = Manifest::load(fs, dir)?.unwrap_or(Manifest {
            checkpoint_lsn: 0,
            start_seq: 1,
            shards: 0,
        });
        if manifest.checkpoint_lsn == 0 {
            return Ok(CheckpointBundle {
                manifest,
                images: Vec::new(),
            });
        }
        let shard_ids: Vec<Option<u32>> = if manifest.shards == 0 {
            vec![None]
        } else {
            (0..manifest.shards).map(Some).collect()
        };
        let mut images = Vec::with_capacity(shard_ids.len());
        let mut vanished = false;
        for sid in shard_ids {
            let name = checkpoint_file_name(manifest.checkpoint_lsn, sid);
            match fs.read(&dir.join(&name))? {
                Some(bytes) => images.push((sid, bytes)),
                None => {
                    vanished = true;
                    break;
                }
            }
        }
        if !vanished {
            return Ok(CheckpointBundle { manifest, images });
        }
    }
    Err(DcError::Corrupt(
        "checkpoint images kept vanishing during fetch (checkpoint churn outpaced the reader)"
            .into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::StdFs;
    use crate::wal::{SyncPolicy, WalConfig, WalReader, WalWriter};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("dc-ship-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(i: i64) -> WalEntry {
        WalEntry::Insert {
            paths: vec![vec!["EU".into(), format!("N{i}")]],
            measure: i,
        }
    }

    fn open_writer(dir: &Path, segment_bytes: u64) -> WalWriter {
        let fs: Arc<dyn WalFs> = Arc::new(StdFs);
        let scan = WalReader::recover(&StdFs, dir).unwrap();
        WalWriter::open(
            fs,
            dir,
            WalConfig {
                segment_bytes,
                sync: SyncPolicy::Always,
            },
            &scan,
            0,
        )
        .unwrap()
    }

    /// Concatenated `(lsn, entry)` pairs of a segment run.
    fn all_entries(ships: &[SegmentShipment]) -> Vec<(u64, WalEntry)> {
        ships.iter().flat_map(|s| s.entries()).collect()
    }

    #[test]
    fn fetch_from_one_ships_everything() {
        let dir = tmp_dir("everything");
        let mut w = open_writer(&dir, 128);
        for i in 0..20 {
            w.append(&sample(i)).unwrap();
        }
        let FetchOutcome::Segments(ships) = fetch_segments(&StdFs, &dir, 1).unwrap() else {
            panic!("no checkpoint yet — must ship segments");
        };
        assert!(ships.len() > 1, "tiny budget must have rotated");
        let entries = all_entries(&ships);
        assert_eq!(entries.len(), 20);
        for (i, (lsn, e)) in entries.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(e, &sample(i as i64));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fetch_skips_fully_applied_segments() {
        let dir = tmp_dir("partial");
        let mut w = open_writer(&dir, 128);
        for i in 0..20 {
            w.append(&sample(i)).unwrap();
        }
        let FetchOutcome::Segments(ships) = fetch_segments(&StdFs, &dir, 15).unwrap() else {
            panic!("must ship segments");
        };
        let entries = all_entries(&ships);
        // The run starts at or before 15 (a mid-segment position re-ships
        // that segment from its start) and reaches the tip with no gaps.
        assert!(entries.first().unwrap().0 <= 15);
        assert_eq!(entries.last().unwrap().0, 20);
        let lsns: Vec<u64> = entries.iter().map(|(l, _)| *l).collect();
        let want: Vec<u64> = (lsns[0]..=20).collect();
        assert_eq!(lsns, want, "run is LSN-continuous");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fetch_below_checkpoint_redirects() {
        let dir = tmp_dir("redirect");
        let mut w = open_writer(&dir, 1 << 20);
        for i in 0..10 {
            w.append(&sample(i)).unwrap();
        }
        let (lsn, start_seq) = w.prepare_checkpoint().unwrap();
        w.commit_checkpoint(lsn, start_seq, 0).unwrap();
        assert_eq!(
            fetch_segments(&StdFs, &dir, 5).unwrap(),
            FetchOutcome::NeedCheckpoint { checkpoint_lsn: 10 }
        );
        // Past the checkpoint, the (empty) tail ships normally.
        w.append(&sample(99)).unwrap();
        let FetchOutcome::Segments(ships) = fetch_segments(&StdFs, &dir, 11).unwrap() else {
            panic!("position past the checkpoint must ship");
        };
        assert_eq!(all_entries(&ships), vec![(11, sample(99))]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_ships_clean_prefix_only() {
        let dir = tmp_dir("torn");
        let mut w = open_writer(&dir, 1 << 20);
        for i in 0..6 {
            w.append(&sample(i)).unwrap();
        }
        let seq = w.segment_seq();
        drop(w);
        // Crash mid-append: garbage half-frame at the end.
        let path = dir.join(segment_file_name(seq));
        let clean = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0x44, 0x00, 0x00, 0x00, 0x11]).unwrap();
        }
        let FetchOutcome::Segments(ships) = fetch_segments(&StdFs, &dir, 1).unwrap() else {
            panic!("must ship the clean prefix");
        };
        assert_eq!(ships.len(), 1);
        assert_eq!(ships[0].bytes.len() as u64, clean, "torn tail trimmed");
        assert_eq!(all_entries(&ships).len(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fetch_checkpoint_round_trips_manifest_and_images() {
        let dir = tmp_dir("bundle");
        // Fresh directory: empty bundle, zero checkpoint.
        let b = fetch_checkpoint(&StdFs, &dir).unwrap();
        assert_eq!(b.manifest.checkpoint_lsn, 0);
        assert!(b.images.is_empty());
        // Committed checkpoint with one unsharded image.
        let mut w = open_writer(&dir, 1 << 20);
        for i in 0..4 {
            w.append(&sample(i)).unwrap();
        }
        let (lsn, start_seq) = w.prepare_checkpoint().unwrap();
        StdFs
            .write_atomic(&dir.join(checkpoint_file_name(lsn, None)), b"image-bytes")
            .unwrap();
        w.commit_checkpoint(lsn, start_seq, 0).unwrap();
        let b = fetch_checkpoint(&StdFs, &dir).unwrap();
        assert_eq!(b.manifest.checkpoint_lsn, 4);
        assert_eq!(b.images, vec![(None, b"image-bytes".to_vec())]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
