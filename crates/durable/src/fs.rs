//! The I/O seam of the durability layer.
//!
//! Every byte the WAL machinery reads or writes goes through the
//! [`WalFs`]/[`WalFile`] traits instead of `std::fs` directly. Production
//! code uses [`StdFs`] (plain files, `sync_data` for durability); the
//! `fault-injection` feature adds `FaultFs`, which implements the same
//! traits but can deterministically tear a write in half, flip a bit, or
//! fail an fsync — which is how the crash-recovery harness kills the store
//! at every interesting byte offset without forking processes.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use dc_common::DcResult;

/// One append-only log file.
pub trait WalFile: fmt::Debug + Send {
    /// Appends `buf` in full (or fails).
    fn write_all(&mut self, buf: &[u8]) -> DcResult<()>;
    /// Makes everything appended so far durable (flush + fsync).
    fn sync(&mut self) -> DcResult<()>;
}

/// The filesystem operations the WAL layer needs. Implementations must be
/// shareable across the ingest threads and the shard writer threads.
pub trait WalFs: fmt::Debug + Send + Sync {
    /// `mkdir -p`.
    fn create_dir_all(&self, dir: &Path) -> DcResult<()>;
    /// Opens (creating if needed) `path` for appending.
    fn create_append(&self, path: &Path) -> DcResult<Box<dyn WalFile>>;
    /// Reads a whole file; `Ok(None)` when it does not exist.
    fn read(&self, path: &Path) -> DcResult<Option<Vec<u8>>>;
    /// Replaces `path` atomically: write a temp file, sync it, rename.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> DcResult<()>;
    /// Truncates `path` to `len` bytes and syncs.
    fn set_len(&self, path: &Path, len: u64) -> DcResult<()>;
    /// Removes a file (missing is an error).
    fn remove(&self, path: &Path) -> DcResult<()>;
    /// The file names (not paths) inside `dir`.
    fn list(&self, dir: &Path) -> DcResult<Vec<String>>;
}

/// The real filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdFs;

#[derive(Debug)]
struct StdWalFile(File);

impl WalFile for StdWalFile {
    fn write_all(&mut self, buf: &[u8]) -> DcResult<()> {
        self.0.write_all(buf)?;
        Ok(())
    }

    fn sync(&mut self) -> DcResult<()> {
        self.0.flush()?;
        self.0.sync_data()?;
        Ok(())
    }
}

impl WalFs for StdFs {
    fn create_dir_all(&self, dir: &Path) -> DcResult<()> {
        std::fs::create_dir_all(dir)?;
        Ok(())
    }

    fn create_append(&self, path: &Path) -> DcResult<Box<dyn WalFile>> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(StdWalFile(file)))
    }

    fn read(&self, path: &Path) -> DcResult<Option<Vec<u8>>> {
        match std::fs::read(path) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> DcResult<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    fn set_len(&self, path: &Path, len: u64) -> DcResult<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()?;
        Ok(())
    }

    fn remove(&self, path: &Path) -> DcResult<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn list(&self, dir: &Path) -> DcResult<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }
}
