//! Deterministic fault injection for the durability layer (behind the
//! `fault-injection` feature).
//!
//! [`FaultFs`] wraps [`StdFs`] and counts every byte written to segment
//! files. A [`FaultPlan`] makes it misbehave at an exact, reproducible
//! point: crash after byte `N` of WAL traffic (writing only the prefix
//! that fits — a genuine torn frame), flip one bit of a write, or fail
//! the `n`-th fsync. Once the plan's crash point fires the shim is
//! *crashed*: every further mutating operation fails with
//! [`DcError::Fault`], emulating a dead process, while the files keep
//! exactly the bytes a real crash would have left. The harness then
//! recovers from the same directory with a clean [`StdFs`] and checks the
//! result against a never-crashed oracle.
//!
//! Determinism: byte offsets are counted over segment-file appends only
//! (headers included), in the order the writer issues them, so the same
//! seeded workload + the same plan always tears the same frame.

use std::path::Path;
use std::sync::{Arc, Mutex};

use dc_common::{DcError, DcResult};

use crate::fs::{StdFs, WalFile, WalFs};

/// What to break, and exactly where.
#[derive(Clone, Copy, Default, Debug)]
pub struct FaultPlan {
    /// Crash once this many bytes of segment traffic have been written:
    /// the write that crosses the budget lands only its in-budget prefix.
    pub crash_after_bytes: Option<u64>,
    /// Flip `mask` into the byte at this absolute segment-traffic offset.
    pub flip_bit: Option<(u64, u8)>,
    /// Fail (and crash on) the `n`-th fsync, 1-based.
    pub fail_sync: Option<u64>,
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    written: u64,
    syncs: u64,
    crashed: bool,
}

/// A [`WalFs`] that injects the faults described by a [`FaultPlan`].
#[derive(Clone, Debug)]
pub struct FaultFs {
    inner: StdFs,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFs {
    /// A shim that will fault per `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultFs {
            inner: StdFs,
            state: Arc::new(Mutex::new(FaultState {
                plan,
                written: 0,
                syncs: 0,
                crashed: false,
            })),
        }
    }

    /// Whether the planned crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Total segment-file bytes written so far (headers included).
    pub fn written(&self) -> u64 {
        self.state.lock().unwrap().written
    }

    /// Total fsyncs issued so far. Lets a harness plan `fail_sync` points
    /// that actually fire under lazy policies (`EveryN`, `GroupCommitMs`),
    /// where a run issues far fewer syncs than it has appends.
    pub fn synced(&self) -> u64 {
        self.state.lock().unwrap().syncs
    }

    fn check_alive(&self) -> DcResult<()> {
        if self.state.lock().unwrap().crashed {
            Err(DcError::Fault("process crashed by fault plan".into()))
        } else {
            Ok(())
        }
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn WalFile>,
    state: Arc<Mutex<FaultState>>,
}

impl WalFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> DcResult<()> {
        let mut st = self.state.lock().unwrap();
        if st.crashed {
            return Err(DcError::Fault("process crashed by fault plan".into()));
        }
        let mut owned;
        let mut chunk: &[u8] = buf;
        if let Some((offset, mask)) = st.plan.flip_bit {
            if offset >= st.written && offset < st.written + buf.len() as u64 {
                owned = buf.to_vec();
                owned[(offset - st.written) as usize] ^= mask;
                chunk = &owned;
            }
        }
        if let Some(budget) = st.plan.crash_after_bytes {
            if st.written + chunk.len() as u64 > budget {
                let keep = (budget.saturating_sub(st.written)) as usize;
                self.inner.write_all(&chunk[..keep])?;
                // A real crash offers no durability for the torn prefix,
                // but leaving it unsynced in the page cache is the same
                // observable state for a scan-based recovery.
                st.written += keep as u64;
                st.crashed = true;
                return Err(DcError::Fault(format!(
                    "crash after {budget} WAL bytes (torn write of {keep}/{} bytes)",
                    chunk.len()
                )));
            }
        }
        self.inner.write_all(chunk)?;
        st.written += chunk.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> DcResult<()> {
        let mut st = self.state.lock().unwrap();
        if st.crashed {
            return Err(DcError::Fault("process crashed by fault plan".into()));
        }
        st.syncs += 1;
        if st.plan.fail_sync == Some(st.syncs) {
            st.crashed = true;
            return Err(DcError::Fault(format!("fsync #{} failed", st.syncs)));
        }
        self.inner.sync()
    }
}

impl WalFs for FaultFs {
    fn create_dir_all(&self, dir: &Path) -> DcResult<()> {
        self.check_alive()?;
        self.inner.create_dir_all(dir)
    }

    fn create_append(&self, path: &Path) -> DcResult<Box<dyn WalFile>> {
        self.check_alive()?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create_append(path)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> DcResult<Option<Vec<u8>>> {
        self.inner.read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> DcResult<()> {
        self.check_alive()?;
        self.inner.write_atomic(path, bytes)
    }

    fn set_len(&self, path: &Path, len: u64) -> DcResult<()> {
        self.check_alive()?;
        self.inner.set_len(path, len)
    }

    fn remove(&self, path: &Path) -> DcResult<()> {
        self.check_alive()?;
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> DcResult<Vec<String>> {
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("dc-fault-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crash_budget_tears_the_crossing_write() {
        let dir = tmp_dir("budget");
        let fs = FaultFs::new(FaultPlan {
            crash_after_bytes: Some(10),
            ..FaultPlan::default()
        });
        let path = dir.join("seg");
        let mut f = fs.create_append(&path).unwrap();
        f.write_all(&[1; 6]).unwrap();
        let err = f.write_all(&[2; 6]).unwrap_err();
        assert!(matches!(err, DcError::Fault(_)));
        assert!(fs.crashed());
        assert_eq!(std::fs::read(&path).unwrap().len(), 10, "prefix landed");
        assert!(matches!(f.write_all(&[3]).unwrap_err(), DcError::Fault(_)));
        assert!(matches!(
            fs.create_append(&dir.join("other")).unwrap_err(),
            DcError::Fault(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_lands_at_the_absolute_offset() {
        let dir = tmp_dir("flip");
        let fs = FaultFs::new(FaultPlan {
            flip_bit: Some((5, 0x80)),
            ..FaultPlan::default()
        });
        let path = dir.join("seg");
        let mut f = fs.create_append(&path).unwrap();
        f.write_all(&[0; 4]).unwrap();
        f.write_all(&[0; 4]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[5], 0x80);
        assert!(bytes.iter().enumerate().all(|(i, &b)| (i == 5) ^ (b == 0)));
        assert!(!fs.crashed(), "a flip is silent, not a crash");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nth_sync_fails_and_crashes() {
        let dir = tmp_dir("sync");
        let fs = FaultFs::new(FaultPlan {
            fail_sync: Some(2),
            ..FaultPlan::default()
        });
        let mut f = fs.create_append(&dir.join("seg")).unwrap();
        f.write_all(&[1]).unwrap();
        f.sync().unwrap();
        f.write_all(&[2]).unwrap();
        assert!(matches!(f.sync().unwrap_err(), DcError::Fault(_)));
        assert!(fs.crashed());
        std::fs::remove_dir_all(&dir).ok();
    }
}
