//! # dc-durable
//!
//! Durability for the DC-tree: a checksummed **write-ahead log**,
//! **checkpoints**, and **crash recovery**.
//!
//! The paper's pitch is a warehouse that never needs a maintenance window —
//! which only holds in practice if the index also survives process death
//! without a nightly rebuild. [`DurableDcTree`] wraps a [`DcTree`] with the
//! classic recipe:
//!
//! 1. every mutation is appended to `wal.log` (length + CRC-32 framed,
//!    carrying the *raw attribute paths*, so replay re-interns values in the
//!    original order and reproduces identical IDs) **before** it is applied
//!    to the in-memory tree;
//! 2. [`checkpoint`](DurableDcTree::checkpoint) writes the full tree image
//!    to `checkpoint.dct` atomically (write-temp + rename) and starts a
//!    fresh log;
//! 3. [`open`](DurableDcTree::open) recovers by loading the last checkpoint
//!    and replaying the log tail, stopping cleanly at a torn or corrupted
//!    entry (the partial write of a crash) and truncating it.
//!
//! Sync behaviour is configurable: [`SyncMode::Always`] fsyncs per
//! mutation (maximum durability), [`SyncMode::OnCheckpoint`] leaves
//! intermediate syncing to the OS.

pub mod tree;
pub mod wal;

pub use tree::{DurabilityConfig, DurableDcTree, SyncMode};
pub use wal::{WalEntry, WalReader, WalWriter};
