//! # dc-durable
//!
//! Durability for the DC-tree: a checksummed, **segmented write-ahead
//! log**, **checkpoints**, **crash recovery**, and a deterministic
//! **fault-injection** shim to prove all three.
//!
//! The paper's pitch is a warehouse that never needs a maintenance window —
//! which only holds in practice if the index also survives process death
//! without a nightly rebuild. [`DurableDcTree`] wraps a [`DcTree`] with the
//! classic recipe:
//!
//! 1. every mutation is appended to the current WAL segment
//!    (`wal.000017.log`; length + CRC-32 framed, carrying the *raw
//!    attribute paths*, so replay re-interns values in the original order
//!    and reproduces identical IDs) **before** it is applied to the
//!    in-memory tree; segments rotate at a byte budget and frames never
//!    span a rotation;
//! 2. [`checkpoint`](DurableDcTree::checkpoint) serializes the tree (with
//!    its interning state) as an LSN-versioned image, atomically commits
//!    the `wal.manifest` pointing at it, and deletes the superseded
//!    segments — two-phase, so a crash in between recovers through the
//!    *old* checkpoint without double-applying;
//! 3. [`open`](DurableDcTree::open) recovers by loading the manifest's
//!    checkpoint image and replaying only the tail segments, stopping
//!    cleanly at a torn or corrupted frame (the partial write of a crash)
//!    and repairing the directory.
//!
//! Sync behaviour is a [`SyncPolicy`]: `Always` fsyncs per mutation,
//! `EveryN` amortizes over batches, `GroupCommitMs` lets batch appliers
//! issue [`WalWriter::group_commit`] on their own cadence.
//!
//! Every byte of I/O goes through the [`WalFs`]/[`WalFile`] traits.
//! Production uses [`StdFs`]; with the `fault-injection` feature, `FaultFs`
//! deterministically tears writes, flips bits, or fails fsyncs so the
//! crash-recovery harnesses can kill the store at every interesting offset.
//!
//! [`DcTree`]: dc_tree::DcTree

//!
//! The [`ship`] module is the read side of replication: it serves a WAL
//! directory's live segments (clean prefixes only, LSN-continuous or a
//! `NeedCheckpoint` redirect — never a silent gap) and checkpoint bundles
//! to followers, concurrently with the writer.

#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod fs;
pub mod segment;
pub mod ship;
pub mod tree;
pub mod wal;

#[cfg(feature = "fault-injection")]
pub use fault::{FaultFs, FaultPlan};
pub use fs::{StdFs, WalFile, WalFs};
pub use segment::{
    checkpoint_file_name, parse_checkpoint_file_name, parse_segment_file_name, segment_file_name,
    Manifest, MANIFEST_FILE, SEGMENT_HEADER_LEN,
};
pub use ship::{fetch_checkpoint, fetch_segments, CheckpointBundle, FetchOutcome, SegmentShipment};
pub use tree::{apply, DurabilityConfig, DurableDcTree, RecoveryReport};
pub use wal::{SyncPolicy, WalConfig, WalEntry, WalReader, WalWriter, WalWriterStats};
