//! On-disk naming and framing shared by the segmented WAL: segment file
//! headers, the manifest, and checkpoint image names.
//!
//! Layout of a WAL directory:
//!
//! ```text
//! wal.manifest               checkpoint LSN + first live segment + shards
//! wal.000004.log             [header][frame][frame]…
//! wal.000005.log
//! checkpoint.00000000000000000217.dct          (unsharded image at LSN 217)
//! checkpoint.00000000000000000217.shard0.dct   (sharded images)
//! ```
//!
//! A segment starts with a 28-byte header — magic, its own sequence
//! number, the LSN of its first frame, and a CRC over both — so recovery
//! can both verify it is reading the segment the name claims and skip
//! frames already covered by the checkpoint. Frames never span segments:
//! rotation only happens between appends.

use std::path::Path;

use dc_common::{DcError, DcResult};
use dc_storage::{crc32, ByteReader, ByteWriter};

use crate::fs::WalFs;

/// Magic prefix of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DCWSEG01";
/// Magic prefix of the manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"DCWMAN01";
/// Size of the segment header: magic + seq + first_lsn + crc.
pub const SEGMENT_HEADER_LEN: usize = 28;
/// The manifest's file name inside a WAL directory.
pub const MANIFEST_FILE: &str = "wal.manifest";

/// `wal.000017.log`.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal.{seq:06}.log")
}

/// Parses a segment file name back to its sequence number.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal.")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The checkpoint image name for `lsn`, either unsharded (`shard: None`)
/// or one shard of a sharded engine.
pub fn checkpoint_file_name(lsn: u64, shard: Option<u32>) -> String {
    match shard {
        None => format!("checkpoint.{lsn:020}.dct"),
        Some(s) => format!("checkpoint.{lsn:020}.shard{s}.dct"),
    }
}

/// Parses a checkpoint image name to `(lsn, shard)`.
pub fn parse_checkpoint_file_name(name: &str) -> Option<(u64, Option<u32>)> {
    let rest = name.strip_prefix("checkpoint.")?.strip_suffix(".dct")?;
    match rest.split_once('.') {
        None => Some((rest.parse().ok()?, None)),
        Some((lsn, shard)) => Some((
            lsn.parse().ok()?,
            Some(shard.strip_prefix("shard")?.parse().ok()?),
        )),
    }
}

/// Encodes a segment header.
pub fn encode_segment_header(seq: u64, first_lsn: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut out = [0u8; SEGMENT_HEADER_LEN];
    out[..8].copy_from_slice(SEGMENT_MAGIC);
    out[8..16].copy_from_slice(&seq.to_le_bytes());
    out[16..24].copy_from_slice(&first_lsn.to_le_bytes());
    let crc = crc32(&out[8..24]);
    out[24..28].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes and verifies a segment header; `None` when torn or corrupt.
pub fn decode_segment_header(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() < SEGMENT_HEADER_LEN || &bytes[..8] != SEGMENT_MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let first_lsn = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    let crc = u32::from_le_bytes(bytes[24..28].try_into().ok()?);
    (crc32(&bytes[8..24]) == crc).then_some((seq, first_lsn))
}

/// The durable root of a WAL directory: which LSN the newest checkpoint
/// covers, which segment holds the first frame past it, and how many
/// shard images make up the checkpoint (`0` = one unsharded image).
///
/// Replaced atomically (temp + sync + rename), so recovery always sees
/// either the old or the new manifest, never a half-written one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Manifest {
    /// Every mutation with `lsn <= checkpoint_lsn` is baked into the
    /// checkpoint images; replay starts after it.
    pub checkpoint_lsn: u64,
    /// The first segment recovery must scan.
    pub start_seq: u64,
    /// Shard images in the checkpoint (`0` for a [`DurableDcTree`]).
    ///
    /// [`DurableDcTree`]: crate::DurableDcTree
    pub shards: u32,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(32);
        for &b in MANIFEST_MAGIC {
            w.put_u8(b);
        }
        let mut payload = ByteWriter::with_capacity(20);
        payload.put_u64(self.checkpoint_lsn);
        payload.put_u64(self.start_seq);
        payload.put_u32(self.shards);
        let payload = payload.into_vec();
        w.put_u32(crc32(&payload));
        for &b in &payload {
            w.put_u8(b);
        }
        w.into_vec()
    }

    fn decode(bytes: &[u8]) -> DcResult<Manifest> {
        let mut r = ByteReader::new(bytes);
        for &expected in MANIFEST_MAGIC {
            if r.get_u8()? != expected {
                return Err(DcError::Corrupt("bad WAL manifest magic".into()));
            }
        }
        let crc = r.get_u32()?;
        if crc32(&bytes[12..]) != crc {
            return Err(DcError::Corrupt("WAL manifest checksum mismatch".into()));
        }
        let manifest = Manifest {
            checkpoint_lsn: r.get_u64()?,
            start_seq: r.get_u64()?,
            shards: r.get_u32()?,
        };
        r.expect_end()?;
        Ok(manifest)
    }

    /// Atomically replaces the manifest in `dir`.
    pub fn store(&self, fs: &dyn WalFs, dir: &Path) -> DcResult<()> {
        fs.write_atomic(&dir.join(MANIFEST_FILE), &self.encode())
    }

    /// Loads the manifest from `dir`; `Ok(None)` when absent, an error
    /// when present but corrupt (recovery must not guess).
    pub fn load(fs: &dyn WalFs, dir: &Path) -> DcResult<Option<Manifest>> {
        match fs.read(&dir.join(MANIFEST_FILE))? {
            None => Ok(None),
            Some(bytes) => Manifest::decode(&bytes).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::StdFs;

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(17), "wal.000017.log");
        assert_eq!(parse_segment_file_name("wal.000017.log"), Some(17));
        assert_eq!(parse_segment_file_name("wal.1000000.log"), Some(1_000_000));
        assert_eq!(parse_segment_file_name("wal.manifest"), None);
        assert_eq!(parse_segment_file_name("wal.00a017.log"), None);
        assert_eq!(parse_segment_file_name("checkpoint.3.dct"), None);
    }

    #[test]
    fn checkpoint_names_round_trip() {
        let plain = checkpoint_file_name(217, None);
        assert_eq!(parse_checkpoint_file_name(&plain), Some((217, None)));
        let sharded = checkpoint_file_name(217, Some(3));
        assert_eq!(parse_checkpoint_file_name(&sharded), Some((217, Some(3))));
        assert_eq!(parse_checkpoint_file_name("checkpoint.tmp"), None);
        assert_eq!(parse_checkpoint_file_name("wal.000001.log"), None);
    }

    #[test]
    fn segment_header_round_trip_and_corruption() {
        let h = encode_segment_header(5, 101);
        assert_eq!(decode_segment_header(&h), Some((5, 101)));
        assert_eq!(decode_segment_header(&h[..20]), None, "torn header");
        let mut bad = h;
        bad[10] ^= 1;
        assert_eq!(decode_segment_header(&bad), None, "checksum catches flips");
    }

    #[test]
    fn manifest_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("dc-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = StdFs;
        assert!(Manifest::load(&fs, &dir).unwrap().is_none());
        let m = Manifest {
            checkpoint_lsn: 42,
            start_seq: 7,
            shards: 4,
        };
        m.store(&fs, &dir).unwrap();
        assert_eq!(Manifest::load(&fs, &dir).unwrap(), Some(m));
        // A flipped byte is detected, not silently accepted.
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(Manifest::load(&fs, &dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
