//! The segmented write-ahead log: length- and CRC-framed mutation records
//! in numbered segment files, rotated at a byte budget, anchored by a
//! checkpoint manifest.
//!
//! Frame layout inside a segment (after the 28-byte segment header, see
//! [`crate::segment`]): `[payload_len: u32][crc32(payload): u32][payload]`.
//! The payload encodes the mutation with the checked codec of `dc-storage`.
//! Every frame has a log sequence number (LSN, 1-based, global across
//! segments); a segment's header records the LSN of its first frame.
//!
//! Recovery ([`WalReader::recover`]) reads the manifest, scans the live
//! segments in order, and stops at the first torn or corrupt frame —
//! exactly the state a crash mid-append leaves behind. The torn tail is
//! truncated and any segments past the stop point are deleted, so the next
//! scan sees a clean chain. Appending resumes in a *fresh* segment, never
//! on top of a repaired one.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use dc_common::{DcError, DcResult, Measure};
use dc_storage::{crc32, ByteReader, ByteWriter};

use crate::fs::{WalFile, WalFs};
use crate::segment::{
    decode_segment_header, encode_segment_header, parse_segment_file_name, segment_file_name,
    Manifest, SEGMENT_HEADER_LEN,
};

/// One logged mutation, carrying raw attribute paths (top → leaf per
/// dimension) so replay reproduces the original dynamic interning order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalEntry {
    /// Insert a record.
    Insert {
        /// Attribute paths, one per dimension.
        paths: Vec<Vec<String>>,
        /// The measure value.
        measure: Measure,
    },
    /// Delete one record matching the paths and measure.
    Delete {
        /// Attribute paths, one per dimension.
        paths: Vec<Vec<String>>,
        /// The measure value.
        measure: Measure,
    },
}

impl WalEntry {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        let (tag, paths, measure) = match self {
            WalEntry::Insert { paths, measure } => (0u8, paths, measure),
            WalEntry::Delete { paths, measure } => (1u8, paths, measure),
        };
        w.put_u8(tag);
        w.put_i64(*measure);
        w.put_u16(paths.len() as u16);
        for dim in paths {
            w.put_u16(dim.len() as u16);
            for name in dim {
                w.put_str(name);
            }
        }
        w.into_vec()
    }

    fn decode(payload: &[u8]) -> DcResult<WalEntry> {
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8()?;
        let measure = r.get_i64()?;
        let dims = r.get_u16()? as usize;
        let mut paths = Vec::with_capacity(dims);
        for _ in 0..dims {
            let levels = r.get_u16()? as usize;
            let mut dim = Vec::with_capacity(levels);
            for _ in 0..levels {
                dim.push(r.get_str()?);
            }
            paths.push(dim);
        }
        r.expect_end()?;
        match tag {
            0 => Ok(WalEntry::Insert { paths, measure }),
            1 => Ok(WalEntry::Delete { paths, measure }),
            t => Err(DcError::Corrupt(format!("unknown WAL tag {t}"))),
        }
    }
}

/// When appended frames are fsynced.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SyncPolicy {
    /// fsync after every append — nothing acknowledged is ever lost.
    /// The default.
    #[default]
    Always,
    /// fsync once per `N` appends. A crash may lose up to `N-1` trailing
    /// unsynced entries, never corrupt the store.
    EveryN(u32),
    /// Group commit: appends are left unsynced; the *next* append after
    /// `ms` milliseconds — or an explicit [`WalWriter::group_commit`],
    /// which the serving engine's shard writer threads issue after each
    /// applied batch — syncs everything accumulated so far.
    GroupCommitMs(u64),
}

/// Segmented-WAL knobs.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Rotate to a new segment once the current one reaches this many
    /// bytes. Frames never split: the budget is checked *between* appends.
    pub segment_bytes: u64,
    /// fsync policy for appended frames.
    pub sync: SyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 4 << 20,
            sync: SyncPolicy::Always,
        }
    }
}

/// Monotonic counters of one writer's lifetime (exported into the serving
/// engine's STATS).
#[derive(Clone, Copy, Default, Debug)]
pub struct WalWriterStats {
    /// Frames appended.
    pub appends: u64,
    /// Successful fsyncs.
    pub syncs: u64,
    /// Segment rotations (budget-driven and checkpoint-driven).
    pub rotations: u64,
    /// Frame bytes appended (headers excluded).
    pub appended_bytes: u64,
}

/// Appender over a segmented log directory.
#[derive(Debug)]
pub struct WalWriter {
    fs: Arc<dyn WalFs>,
    dir: PathBuf,
    config: WalConfig,
    file: Box<dyn WalFile>,
    seq: u64,
    segment_len: u64,
    next_lsn: u64,
    synced_lsn: u64,
    unsynced: u32,
    dirty: bool,
    last_sync: Instant,
    stats: WalWriterStats,
}

impl WalWriter {
    /// Opens the log for appending after a [`WalReader::recover`] pass,
    /// starting a fresh segment whose first LSN continues the recovered
    /// chain. Writes an initial manifest when the directory has none.
    /// `shards` is recorded in that manifest (see [`Manifest::shards`]).
    pub fn open(
        fs: Arc<dyn WalFs>,
        dir: impl AsRef<Path>,
        config: WalConfig,
        recovered: &WalReader,
        shards: u32,
    ) -> DcResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs.create_dir_all(&dir)?;
        let seq = recovered.max_seq_seen.max(recovered.manifest.start_seq - 1) + 1;
        let mut file = fs.create_append(&dir.join(segment_file_name(seq)))?;
        file.write_all(&encode_segment_header(seq, recovered.next_lsn))?;
        if !recovered.manifest_found {
            Manifest {
                checkpoint_lsn: 0,
                start_seq: seq,
                shards,
            }
            .store(&*fs, &dir)?;
        }
        Ok(WalWriter {
            fs,
            dir,
            config,
            file,
            seq,
            segment_len: SEGMENT_HEADER_LEN as u64,
            next_lsn: recovered.next_lsn,
            synced_lsn: recovered.next_lsn - 1,
            unsynced: 0,
            dirty: true, // the fresh segment header is not yet synced
            last_sync: Instant::now(),
            stats: WalWriterStats::default(),
        })
    }

    /// Appends one entry, returning its LSN. Rotation and the configured
    /// [`SyncPolicy`] are applied here.
    pub fn append(&mut self, entry: &WalEntry) -> DcResult<u64> {
        self.append_batch(std::slice::from_ref(entry))
    }

    /// Appends a batch of entries as **one frame group**: one rotation
    /// check, one buffered write, and one sync-policy decision for the
    /// whole batch. Returns the LSN of the batch's *last* entry (entries
    /// take consecutive LSNs).
    ///
    /// Frames stay self-delimiting and per-frame CRC'd, so recovery of a
    /// crash mid-group truncates to a clean prefix of the batch — the
    /// `synced ≤ recovered ≤ attempted` contract is unchanged; only the
    /// write and fsync cost is amortized. A group is never split across
    /// segments (the rotation budget is checked between groups, like
    /// between single appends).
    pub fn append_batch(&mut self, entries: &[WalEntry]) -> DcResult<u64> {
        if entries.is_empty() {
            return Ok(self.lsn());
        }
        if self.segment_len >= self.config.segment_bytes {
            self.rotate()?;
        }
        let mut frames = Vec::new();
        for entry in entries {
            let payload = entry.encode();
            frames.reserve(8 + payload.len());
            frames.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frames.extend_from_slice(&crc32(&payload).to_le_bytes());
            frames.extend_from_slice(&payload);
        }
        self.file.write_all(&frames)?;
        let last_lsn = self.next_lsn + entries.len() as u64 - 1;
        self.next_lsn += entries.len() as u64;
        self.segment_len += frames.len() as u64;
        self.stats.appends += entries.len() as u64;
        self.stats.appended_bytes += frames.len() as u64;
        self.dirty = true;
        self.unsynced = self.unsynced.saturating_add(entries.len() as u32);
        match self.config.sync {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::GroupCommitMs(ms) => {
                if self.last_sync.elapsed().as_millis() as u64 >= ms {
                    self.sync()?;
                }
            }
        }
        Ok(last_lsn)
    }

    /// Flushes and fsyncs everything appended so far (no-op when clean).
    pub fn sync(&mut self) -> DcResult<()> {
        if !self.dirty {
            return Ok(());
        }
        self.file.sync()?;
        self.synced_lsn = self.next_lsn - 1;
        self.unsynced = 0;
        self.dirty = false;
        self.last_sync = Instant::now();
        self.stats.syncs += 1;
        Ok(())
    }

    /// Syncs accumulated appends if any are pending — the group-commit
    /// half of [`SyncPolicy::GroupCommitMs`], called by batch appliers.
    pub fn group_commit(&mut self) -> DcResult<()> {
        self.sync()
    }

    fn rotate(&mut self) -> DcResult<()> {
        self.sync()?;
        self.seq += 1;
        let mut file = self
            .fs
            .create_append(&self.dir.join(segment_file_name(self.seq)))?;
        file.write_all(&encode_segment_header(self.seq, self.next_lsn))?;
        self.file = file;
        self.segment_len = SEGMENT_HEADER_LEN as u64;
        self.dirty = true;
        self.stats.rotations += 1;
        Ok(())
    }

    /// First half of a checkpoint: syncs, rotates to a fresh segment, and
    /// returns `(checkpoint_lsn, start_seq)` — every entry with
    /// `lsn <= checkpoint_lsn` now lives in segments before `start_seq`.
    /// The caller serializes its state images for `checkpoint_lsn`, then
    /// calls [`Self::commit_checkpoint`]. Until that commit, the old
    /// manifest and segments stay intact, so a crash between the two
    /// halves recovers through the *old* checkpoint.
    pub fn prepare_checkpoint(&mut self) -> DcResult<(u64, u64)> {
        self.sync()?;
        let checkpoint_lsn = self.next_lsn - 1;
        self.rotate()?;
        Ok((checkpoint_lsn, self.seq))
    }

    /// Second half of a checkpoint: durably points the manifest at the new
    /// checkpoint and deletes the superseded segments.
    pub fn commit_checkpoint(
        &mut self,
        checkpoint_lsn: u64,
        start_seq: u64,
        shards: u32,
    ) -> DcResult<()> {
        Manifest {
            checkpoint_lsn,
            start_seq,
            shards,
        }
        .store(&*self.fs, &self.dir)?;
        for name in self.fs.list(&self.dir)? {
            if let Some(seq) = parse_segment_file_name(&name) {
                if seq < start_seq {
                    self.fs.remove(&self.dir.join(&name))?;
                }
            }
        }
        Ok(())
    }

    /// The LSN of the last appended entry (0 = none yet).
    pub fn lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// The highest LSN known durable (≤ [`Self::lsn`]).
    pub fn synced_lsn(&self) -> u64 {
        self.synced_lsn
    }

    /// The current segment's sequence number.
    pub fn segment_seq(&self) -> u64 {
        self.seq
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WalWriterStats {
        self.stats
    }
}

/// Result of recovering a WAL directory: the manifest, the clean entries
/// past the checkpoint, and what (if anything) had to be discarded.
///
/// `recover` also *repairs*: the torn tail of the segment it stopped in is
/// truncated, and any segments past the stop point are deleted, so the
/// surviving chain is clean for the next scan. Entries are only dropped
/// when they were never durable (a crash's torn tail) or physically
/// unreadable (bit rot, a deleted segment) — in the latter case
/// [`WalReader::tail_lost`] is set so callers can tell the two apart.
#[derive(Debug)]
pub struct WalReader {
    /// The manifest in effect (defaults when the directory is fresh).
    pub manifest: Manifest,
    /// Whether a manifest file was present.
    pub manifest_found: bool,
    /// Entries with `lsn > manifest.checkpoint_lsn`, in LSN order.
    pub entries: Vec<WalEntry>,
    /// The LSN the next appended entry must get.
    pub next_lsn: u64,
    /// Highest segment sequence number present before repair.
    pub max_seq_seen: u64,
    /// Bytes discarded: torn tails plus fully dropped segments.
    pub truncated_bytes: u64,
    /// `true` when whole segments were dropped (a sequence gap or a
    /// corrupt non-tail segment) — stronger than a routine torn tail.
    pub tail_lost: bool,
    /// Segments whose frames were scanned.
    pub segments_scanned: u32,
}

impl WalReader {
    /// Scans and repairs the WAL directory at `dir`. A fresh or missing
    /// directory recovers as empty.
    pub fn recover(fs: &dyn WalFs, dir: impl AsRef<Path>) -> DcResult<WalReader> {
        let dir = dir.as_ref();
        let manifest = Manifest::load(fs, dir)?;
        let manifest_found = manifest.is_some();
        let manifest = manifest.unwrap_or(Manifest {
            checkpoint_lsn: 0,
            start_seq: 1,
            shards: 0,
        });
        // A missing directory (not created yet) lists as empty.
        let names = fs.list(dir).unwrap_or_default();
        let mut seqs: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_segment_file_name(n))
            .collect();
        seqs.sort_unstable();
        let max_seq_seen = seqs.last().copied().unwrap_or(0);

        let mut out = WalReader {
            manifest,
            manifest_found,
            entries: Vec::new(),
            next_lsn: manifest.checkpoint_lsn + 1,
            max_seq_seen,
            truncated_bytes: 0,
            tail_lost: false,
            segments_scanned: 0,
        };
        let mut stopped = false;
        for &seq in &seqs {
            if seq < manifest.start_seq {
                // Superseded by the checkpoint but not yet deleted (a crash
                // between manifest commit and segment deletion): retire it.
                fs.remove(&dir.join(segment_file_name(seq)))?;
                continue;
            }
            let path = dir.join(segment_file_name(seq));
            if stopped {
                // Past a stop point: whatever this segment holds cannot be
                // ordered after what we kept.
                let len = fs.read(&path)?.map_or(0, |b| b.len() as u64);
                out.truncated_bytes += len;
                out.tail_lost = true;
                fs.remove(&path)?;
                continue;
            }
            let bytes = fs.read(&path)?.unwrap_or_default();
            let header = decode_segment_header(&bytes);
            // Ordering is enforced by LSN continuity, not seq contiguity:
            // a repair that retires a whole segment burns its number, and
            // the resumed writer opens at `max_seq_seen + 1`, so benign seq
            // holes occur. A segment whose `first_lsn` runs past what we
            // have recovered so far, though, would skip lost entries — that
            // is the gap that must stop the scan.
            let continuous =
                header.is_some_and(|(hseq, first)| hseq == seq && first <= out.next_lsn);
            let Some((_, first_lsn)) = header.filter(|_| continuous) else {
                // Torn/corrupt header, a mislabeled file, or an LSN gap:
                // the segment is unusable.
                out.truncated_bytes += bytes.len() as u64;
                out.tail_lost = header.is_some(); // a decodable header past a hole means entries were skipped
                stopped = true;
                fs.remove(&path)?;
                continue;
            };
            let (_, clean_len, next) =
                scan_frames(&bytes, first_lsn, manifest.checkpoint_lsn, &mut out.entries);
            if clean_len < bytes.len() {
                out.truncated_bytes += (bytes.len() - clean_len) as u64;
                fs.set_len(&path, clean_len as u64)?;
                stopped = true;
            }
            out.segments_scanned += 1;
            out.next_lsn = next.max(out.next_lsn);
        }
        Ok(out)
    }

    /// `checkpoint_lsn + replayable entries` — how many mutations of the
    /// original stream survive.
    pub fn recovered_through(&self) -> u64 {
        self.manifest.checkpoint_lsn + self.entries.len() as u64
    }
}

/// Scans the frames of one segment body. Frames with `lsn <=
/// checkpoint_lsn` are skipped (already baked into the checkpoint); the
/// rest are appended to `entries`. Returns `(frames_kept, clean_len,
/// next_lsn)`, where `clean_len` is the byte length of the valid prefix.
pub(crate) fn scan_frames(
    bytes: &[u8],
    first_lsn: u64,
    checkpoint_lsn: u64,
    entries: &mut Vec<WalEntry>,
) -> (u64, usize, u64) {
    let mut pos = SEGMENT_HEADER_LEN.min(bytes.len());
    let mut lsn = first_lsn;
    let mut kept = 0u64;
    loop {
        if pos == bytes.len() {
            return (kept, pos, lsn);
        }
        if bytes.len() - pos < 8 {
            return (kept, pos, lsn); // torn frame header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if bytes.len() - pos - 8 < len {
            return (kept, pos, lsn); // torn payload
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return (kept, pos, lsn); // corrupted payload
        }
        match WalEntry::decode(payload) {
            Ok(e) => {
                if lsn > checkpoint_lsn {
                    entries.push(e);
                    kept += 1;
                }
            }
            Err(_) => return (kept, pos, lsn), // well-framed garbage
        }
        lsn += 1;
        pos += 8 + len;
    }
}

/// Scans a raw segment *body* (fuzzing/test helper): frames start at byte
/// 0, no header. Returns the decoded entries and the clean prefix length.
pub fn scan_raw_frames(bytes: &[u8]) -> (Vec<WalEntry>, usize) {
    let mut entries = Vec::new();
    // Offset scanning by faking a header-sized prefix.
    let mut padded = vec![0u8; SEGMENT_HEADER_LEN];
    padded.extend_from_slice(bytes);
    let (_, clean, _) = scan_frames(&padded, 1, 0, &mut entries);
    (entries, clean - SEGMENT_HEADER_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::StdFs;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("dc-wal-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(i: i64) -> WalEntry {
        WalEntry::Insert {
            paths: vec![
                vec!["EU".into(), format!("N{i}")],
                vec!["1996".into(), "1996-01".into()],
            ],
            measure: i,
        }
    }

    fn open_writer(dir: &Path, config: WalConfig) -> WalWriter {
        let fs: Arc<dyn WalFs> = Arc::new(StdFs);
        let scan = WalReader::recover(&StdFs, dir).unwrap();
        WalWriter::open(fs, dir, config, &scan, 0).unwrap()
    }

    #[test]
    fn append_recover_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut w = open_writer(&dir, WalConfig::default());
        let entries: Vec<WalEntry> = (0..20)
            .map(|i| {
                if i % 3 == 0 {
                    WalEntry::Delete {
                        paths: vec![vec![format!("v{i}")]],
                        measure: i,
                    }
                } else {
                    sample(i)
                }
            })
            .collect();
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(w.append(e).unwrap(), i as u64 + 1);
        }
        w.sync().unwrap();
        assert_eq!(w.synced_lsn(), 20);
        drop(w);
        let scan = WalReader::recover(&StdFs, &dir).unwrap();
        assert_eq!(scan.entries, entries);
        assert_eq!(scan.next_lsn, 21);
        assert!(!scan.tail_lost);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_never_splits_a_frame() {
        let dir = tmp_dir("rotate");
        // Tiny budget: every entry (~50 B) forces a rotation.
        let mut w = open_writer(
            &dir,
            WalConfig {
                segment_bytes: 64,
                sync: SyncPolicy::Always,
            },
        );
        for i in 0..12 {
            w.append(&sample(i)).unwrap();
        }
        assert!(w.stats().rotations >= 10, "budget must force rotations");
        drop(w);
        // Every segment individually scans cleanly — no frame spans files.
        let fs = StdFs;
        for name in fs.list(&dir).unwrap() {
            if parse_segment_file_name(&name).is_some() {
                let bytes = std::fs::read(dir.join(&name)).unwrap();
                let (_, first_lsn) = decode_segment_header(&bytes).expect("valid header");
                let mut entries = Vec::new();
                let (_, clean, _) = scan_frames(&bytes, first_lsn, 0, &mut entries);
                assert_eq!(clean, bytes.len(), "{name} has a torn frame");
            }
        }
        let scan = WalReader::recover(&StdFs, &dir).unwrap();
        assert_eq!(scan.entries.len(), 12);
        assert!(scan.segments_scanned >= 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let dir = tmp_dir("torn");
        let mut w = open_writer(&dir, WalConfig::default());
        for i in 0..5 {
            w.append(&sample(i)).unwrap();
        }
        let seq = w.segment_seq();
        drop(w);
        // Crash mid-append: half a frame header at the end.
        let path = dir.join(segment_file_name(seq));
        let clean = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0x21, 0x00, 0x00]).unwrap();
        }
        let scan = WalReader::recover(&StdFs, &dir).unwrap();
        assert_eq!(scan.entries.len(), 5);
        assert_eq!(scan.truncated_bytes, 3);
        assert!(!scan.tail_lost);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean);
        // Appending resumes in a fresh segment with a continuous LSN chain.
        let fs: Arc<dyn WalFs> = Arc::new(StdFs);
        let mut w = WalWriter::open(fs, &dir, WalConfig::default(), &scan, 0).unwrap();
        assert_eq!(w.append(&sample(99)).unwrap(), 6);
        drop(w);
        let scan = WalReader::recover(&StdFs, &dir).unwrap();
        assert_eq!(scan.entries.len(), 6);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_flip() {
        let dir = tmp_dir("bitflip");
        let mut w = open_writer(&dir, WalConfig::default());
        for i in 0..8 {
            w.append(&sample(i)).unwrap();
        }
        let seq = w.segment_seq();
        drop(w);
        let path = dir.join(segment_file_name(seq));
        let mut bytes = std::fs::read(&path).unwrap();
        let target = SEGMENT_HEADER_LEN + (bytes.len() - SEGMENT_HEADER_LEN) / 2;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = WalReader::recover(&StdFs, &dir).unwrap();
        assert!(scan.entries.len() < 8, "entries after the flip discarded");
        assert!(scan.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_recovers_empty() {
        let dir = std::env::temp_dir().join("dc-wal-tests/never-created-dir");
        let scan = WalReader::recover(&StdFs, &dir).unwrap();
        assert!(scan.entries.is_empty());
        assert_eq!(scan.next_lsn, 1);
        assert!(!scan.manifest_found);
    }

    #[test]
    fn append_batch_matches_looped_appends() {
        let dir = tmp_dir("batch");
        let mut w = open_writer(
            &dir,
            WalConfig {
                segment_bytes: 1 << 20,
                sync: SyncPolicy::EveryN(4),
            },
        );
        let entries: Vec<WalEntry> = (0..7).map(sample).collect();
        // One group: consecutive LSNs, the returned LSN is the last one,
        // and the whole group costs one sync decision (7 ≥ 4 → one sync).
        assert_eq!(w.append_batch(&entries).unwrap(), 7);
        assert_eq!(w.lsn(), 7);
        assert_eq!(w.synced_lsn(), 7);
        let syncs_after_batch = w.stats().syncs;
        // An empty batch is a no-op that reports the current frontier.
        assert_eq!(w.append_batch(&[]).unwrap(), 7);
        assert_eq!(w.stats().syncs, syncs_after_batch);
        assert_eq!(w.append(&sample(99)).unwrap(), 8);
        drop(w);
        let scan = WalReader::recover(&StdFs, &dir).unwrap();
        assert_eq!(scan.entries.len(), 8);
        assert_eq!(scan.entries[..7], entries);
        assert_eq!(scan.next_lsn, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_inside_a_batch_group_recovers_a_clean_prefix() {
        let dir = tmp_dir("batch-torn");
        let mut w = open_writer(&dir, WalConfig::default());
        let entries: Vec<WalEntry> = (0..5).map(sample).collect();
        w.append_batch(&entries).unwrap();
        let seq = w.segment_seq();
        drop(w);
        // Tear the file in the middle of the group: the recovered log must
        // be a prefix of the batch, never a hole.
        let path = dir.join(segment_file_name(seq));
        let bytes = std::fs::read(&path).unwrap();
        let cut = SEGMENT_HEADER_LEN + (bytes.len() - SEGMENT_HEADER_LEN) * 3 / 5;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let scan = WalReader::recover(&StdFs, &dir).unwrap();
        assert!(scan.entries.len() < 5);
        assert_eq!(scan.entries[..], entries[..scan.entries.len()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_n_and_group_commit_policies_track_synced_lsn() {
        let dir = tmp_dir("policies");
        let mut w = open_writer(
            &dir,
            WalConfig {
                segment_bytes: 1 << 20,
                sync: SyncPolicy::EveryN(4),
            },
        );
        for i in 0..3 {
            w.append(&sample(i)).unwrap();
        }
        assert_eq!(w.synced_lsn(), 0, "below the batch threshold");
        w.append(&sample(3)).unwrap();
        assert_eq!(w.synced_lsn(), 4, "fourth append triggers the sync");
        w.append(&sample(4)).unwrap();
        assert_eq!(w.synced_lsn(), 4);
        w.group_commit().unwrap();
        assert_eq!(w.synced_lsn(), 5, "group commit flushes the remainder");
        std::fs::remove_dir_all(&dir).ok();
    }
}
