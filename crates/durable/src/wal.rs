//! The write-ahead log: length- and CRC-framed mutation records.
//!
//! Entry framing on disk: `[payload_len: u32][crc32(payload): u32][payload]`.
//! The payload encodes the mutation with the checked codec of `dc-storage`.
//! A reader stops at the first frame that is truncated or fails its
//! checksum — exactly the state a crash mid-append leaves behind — and
//! reports how many clean bytes precede it so recovery can truncate the
//! tail.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

use dc_common::{DcError, DcResult, Measure};
use dc_storage::{crc32, ByteReader, ByteWriter};

/// One logged mutation, carrying raw attribute paths (top → leaf per
/// dimension) so replay reproduces the original dynamic interning order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalEntry {
    /// Insert a record.
    Insert {
        /// Attribute paths, one per dimension.
        paths: Vec<Vec<String>>,
        /// The measure value.
        measure: Measure,
    },
    /// Delete one record matching the paths and measure.
    Delete {
        /// Attribute paths, one per dimension.
        paths: Vec<Vec<String>>,
        /// The measure value.
        measure: Measure,
    },
}

impl WalEntry {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        let (tag, paths, measure) = match self {
            WalEntry::Insert { paths, measure } => (0u8, paths, measure),
            WalEntry::Delete { paths, measure } => (1u8, paths, measure),
        };
        w.put_u8(tag);
        w.put_i64(*measure);
        w.put_u16(paths.len() as u16);
        for dim in paths {
            w.put_u16(dim.len() as u16);
            for name in dim {
                w.put_str(name);
            }
        }
        w.into_vec()
    }

    fn decode(payload: &[u8]) -> DcResult<WalEntry> {
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8()?;
        let measure = r.get_i64()?;
        let dims = r.get_u16()? as usize;
        let mut paths = Vec::with_capacity(dims);
        for _ in 0..dims {
            let levels = r.get_u16()? as usize;
            let mut dim = Vec::with_capacity(levels);
            for _ in 0..levels {
                dim.push(r.get_str()?);
            }
            paths.push(dim);
        }
        r.expect_end()?;
        match tag {
            0 => Ok(WalEntry::Insert { paths, measure }),
            1 => Ok(WalEntry::Delete { paths, measure }),
            t => Err(DcError::Corrupt(format!("unknown WAL tag {t}"))),
        }
    }
}

/// Appender over a log file.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
}

impl WalWriter {
    /// Opens (appending) or creates the log at `path`.
    pub fn open(path: impl AsRef<Path>) -> DcResult<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            file: BufWriter::new(file),
        })
    }

    /// Appends one entry (buffered; call [`Self::sync`] for durability).
    pub fn append(&mut self, entry: &WalEntry) -> DcResult<()> {
        let payload = entry.encode();
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&crc32(&payload).to_le_bytes())?;
        self.file.write_all(&payload)?;
        Ok(())
    }

    /// Flushes buffers and fsyncs to durable storage.
    pub fn sync(&mut self) -> DcResult<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }
}

/// Result of scanning a log file.
#[derive(Debug)]
pub struct WalReader {
    /// The entries that passed framing and checksum validation, in order.
    pub entries: Vec<WalEntry>,
    /// Bytes of clean prefix; anything beyond is a torn/corrupt tail.
    pub clean_len: u64,
    /// `true` iff a torn or corrupt tail was found (and should be
    /// truncated).
    pub tail_corrupt: bool,
}

impl WalReader {
    /// Scans the log at `path`. A missing file reads as empty.
    pub fn scan(path: impl AsRef<Path>) -> DcResult<WalReader> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let mut entries = Vec::new();
        let mut pos = 0usize;
        loop {
            if pos == bytes.len() {
                return Ok(WalReader {
                    entries,
                    clean_len: pos as u64,
                    tail_corrupt: false,
                });
            }
            if bytes.len() - pos < 8 {
                break; // torn frame header
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if bytes.len() - pos - 8 < len {
                break; // torn payload
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break; // corrupted payload
            }
            match WalEntry::decode(payload) {
                Ok(e) => entries.push(e),
                Err(_) => break, // well-framed garbage
            }
            pos += 8 + len;
        }
        Ok(WalReader {
            entries,
            clean_len: pos as u64,
            tail_corrupt: true,
        })
    }

    /// Truncates the file at `path` to its clean prefix.
    pub fn truncate_tail(&self, path: impl AsRef<Path>) -> DcResult<()> {
        if self.tail_corrupt {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(self.clean_len)?;
            f.sync_data()?;
        }
        Ok(())
    }
}

/// Reads all entries, ignoring tail state (test helper and simple uses).
pub fn read_entries(path: impl AsRef<Path>) -> DcResult<Vec<WalEntry>> {
    Ok(WalReader::scan(path)?.entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dc-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    fn sample(i: i64) -> WalEntry {
        WalEntry::Insert {
            paths: vec![
                vec!["EU".into(), format!("N{i}")],
                vec!["1996".into(), "1996-01".into()],
            ],
            measure: i,
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let mut w = WalWriter::open(&path).unwrap();
        let entries: Vec<WalEntry> = (0..20)
            .map(|i| {
                if i % 3 == 0 {
                    WalEntry::Delete {
                        paths: vec![vec![format!("v{i}")]],
                        measure: i,
                    }
                } else {
                    sample(i)
                }
            })
            .collect();
        for e in &entries {
            w.append(e).unwrap();
        }
        w.sync().unwrap();
        let scan = WalReader::scan(&path).unwrap();
        assert_eq!(scan.entries, entries);
        assert!(!scan.tail_corrupt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let path = tmp("torn");
        let mut w = WalWriter::open(&path).unwrap();
        for i in 0..5 {
            w.append(&sample(i)).unwrap();
        }
        w.sync().unwrap();
        let clean = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: write half a frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x21, 0x00, 0x00]).unwrap();
        }
        let scan = WalReader::scan(&path).unwrap();
        assert_eq!(scan.entries.len(), 5);
        assert!(scan.tail_corrupt);
        assert_eq!(scan.clean_len, clean);
        scan.truncate_tail(&path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean);
        // A re-scan is clean and appending resumes correctly.
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&sample(99)).unwrap();
        w.sync().unwrap();
        let scan = WalReader::scan(&path).unwrap();
        assert_eq!(scan.entries.len(), 6);
        assert!(!scan.tail_corrupt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_flip() {
        let path = tmp("bitflip");
        let mut w = WalWriter::open(&path).unwrap();
        for i in 0..8 {
            w.append(&sample(i)).unwrap();
        }
        w.sync().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt somewhere inside the 4th frame's payload.
        let target = bytes.len() / 2;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = WalReader::scan(&path).unwrap();
        assert!(scan.tail_corrupt);
        assert!(
            scan.entries.len() < 8,
            "entries after the flip are discarded"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reads_empty() {
        let scan = WalReader::scan(tmp("missing-nonexistent")).unwrap();
        assert!(scan.entries.is_empty());
        assert!(!scan.tail_corrupt);
    }
}
