//! The durable wrapper: segmented WAL + checkpoints + recovery around a
//! [`DcTree`].
//!
//! On disk a durable tree is a WAL directory (see [`crate::segment`]):
//! numbered segments, a manifest, and LSN-versioned checkpoint images
//! (`checkpoint.<lsn>.dct`). Recovery loads the image named by the
//! manifest's checkpoint LSN and replays only the tail segments past it.
//! Checkpointing is two-phase — write the new image for the prepared LSN,
//! then commit the manifest and delete superseded segments and images —
//! so a crash between the phases recovers through the *old* checkpoint
//! without double-applying anything.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dc_common::{DcResult, Measure, RecordId};
use dc_tree::{DcTree, DcTreeConfig};

use crate::fs::{StdFs, WalFs};
use crate::segment::{checkpoint_file_name, parse_checkpoint_file_name};
use crate::wal::{SyncPolicy, WalConfig, WalEntry, WalReader, WalWriter};

/// Durability knobs.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// fsync policy for the log.
    pub sync: SyncPolicy,
    /// Automatically checkpoint after this many logged mutations
    /// (`0` = only on explicit [`DurableDcTree::checkpoint`] calls).
    pub checkpoint_every: u64,
    /// WAL segment rotation budget in bytes.
    pub segment_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            sync: SyncPolicy::Always,
            checkpoint_every: 0,
            segment_bytes: WalConfig::default().segment_bytes,
        }
    }
}

/// What recovery found and discarded when a durable tree was opened.
#[derive(Clone, Copy, Default, Debug)]
pub struct RecoveryReport {
    /// The checkpoint LSN recovery started from (0 = no checkpoint).
    pub checkpoint_lsn: u64,
    /// Tail entries replayed over the checkpoint.
    pub replayed_entries: u64,
    /// Bytes discarded as torn or unreadable.
    pub truncated_bytes: u64,
    /// Whole segments were dropped, not just a torn tail.
    pub tail_lost: bool,
}

/// A crash-safe DC-tree: mutations go to the write-ahead log first, the
/// in-memory tree second; recovery replays the tail of the log over the
/// last checkpoint. Queries go straight to the wrapped [`DcTree`]
/// ([`Self::tree`]).
#[derive(Debug)]
pub struct DurableDcTree {
    tree: DcTree,
    wal: WalWriter,
    fs: Arc<dyn WalFs>,
    dir: PathBuf,
    durability: DurabilityConfig,
    since_checkpoint: u64,
    checkpoints: u64,
    report: RecoveryReport,
}

impl DurableDcTree {
    /// Opens (or creates) a durable tree in `dir` on the real filesystem,
    /// recovering any previous state: last checkpoint + clean log tail.
    /// `make_tree` builds the initial tree when no checkpoint exists.
    pub fn open(
        dir: impl AsRef<Path>,
        make_tree: impl FnOnce() -> DcTree,
        durability: DurabilityConfig,
    ) -> DcResult<Self> {
        Self::open_with_fs(Arc::new(StdFs), dir, make_tree, durability)
    }

    /// [`Self::open`] through an explicit [`WalFs`] — the entry point the
    /// fault-injection harness uses to crash mid-write.
    pub fn open_with_fs(
        fs: Arc<dyn WalFs>,
        dir: impl AsRef<Path>,
        make_tree: impl FnOnce() -> DcTree,
        durability: DurabilityConfig,
    ) -> DcResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs.create_dir_all(&dir)?;
        let scan = WalReader::recover(&*fs, &dir)?;
        let mut tree = match scan.manifest.checkpoint_lsn {
            0 => make_tree(),
            lsn => {
                let name = checkpoint_file_name(lsn, None);
                let bytes = fs.read(&dir.join(&name))?.ok_or_else(|| {
                    dc_common::DcError::Corrupt(format!("missing checkpoint image {name}"))
                })?;
                DcTree::from_bytes(&bytes)?
            }
        };
        for entry in &scan.entries {
            apply(&mut tree, entry)?;
        }
        let report = RecoveryReport {
            checkpoint_lsn: scan.manifest.checkpoint_lsn,
            replayed_entries: scan.entries.len() as u64,
            truncated_bytes: scan.truncated_bytes,
            tail_lost: scan.tail_lost,
        };
        let wal = WalWriter::open(
            Arc::clone(&fs),
            &dir,
            WalConfig {
                segment_bytes: durability.segment_bytes,
                sync: durability.sync,
            },
            &scan,
            0,
        )?;
        Ok(DurableDcTree {
            tree,
            wal,
            fs,
            dir,
            durability,
            since_checkpoint: report.replayed_entries,
            checkpoints: 0,
            report,
        })
    }

    /// The wrapped tree, for queries (`range_query`, `group_by`, stats …).
    pub fn tree(&self) -> &DcTree {
        &self.tree
    }

    /// The tree's configuration.
    pub fn config(&self) -> &DcTreeConfig {
        self.tree.config()
    }

    /// Mutations logged since the last checkpoint.
    pub fn log_length(&self) -> u64 {
        self.since_checkpoint
    }

    /// What the opening recovery pass found.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.report
    }

    /// The LSN of the last logged mutation.
    pub fn last_lsn(&self) -> u64 {
        self.wal.lsn()
    }

    /// The highest LSN known durable: a crash now loses nothing at or
    /// below it.
    pub fn synced_lsn(&self) -> u64 {
        self.wal.synced_lsn()
    }

    /// Checkpoints taken by this handle.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    fn log(&mut self, entry: &WalEntry) -> DcResult<()> {
        self.wal.append(entry)?;
        self.since_checkpoint += 1;
        Ok(())
    }

    fn maybe_auto_checkpoint(&mut self) -> DcResult<()> {
        if self.durability.checkpoint_every > 0
            && self.since_checkpoint >= self.durability.checkpoint_every
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Durable insert: validated, logged, then applied. Validation comes
    /// first — a record the tree would reject must never reach the WAL,
    /// or the rejection replays as corruption on recovery.
    pub fn insert_raw<S: AsRef<str>>(
        &mut self,
        paths: &[Vec<S>],
        measure: Measure,
    ) -> DcResult<RecordId> {
        self.tree.schema().validate_paths(paths)?;
        let entry = WalEntry::Insert {
            paths: paths
                .iter()
                .map(|d| d.iter().map(|s| s.as_ref().to_string()).collect())
                .collect(),
            measure,
        };
        self.log(&entry)?;
        let id = self.tree.insert_raw(paths, measure)?;
        self.maybe_auto_checkpoint()?;
        Ok(id)
    }

    /// Durable batched insert: the whole batch is appended to the log as
    /// one frame group — a single write and a single sync-policy decision
    /// — then applied to the tree in order. A crash inside the group
    /// recovers a clean prefix of the batch: per-frame CRCs make a torn
    /// group indistinguishable from a shorter stream of single inserts,
    /// so replay semantics are byte-identical to looped
    /// [`Self::insert_raw`] calls.
    pub fn insert_batch_raw<S: AsRef<str>>(
        &mut self,
        batch: &[(Vec<Vec<S>>, Measure)],
    ) -> DcResult<Vec<RecordId>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        for (paths, _) in batch {
            self.tree.schema().validate_paths(paths)?;
        }
        let entries: Vec<WalEntry> = batch
            .iter()
            .map(|(paths, measure)| WalEntry::Insert {
                paths: paths
                    .iter()
                    .map(|d| d.iter().map(|s| s.as_ref().to_string()).collect())
                    .collect(),
                measure: *measure,
            })
            .collect();
        self.wal.append_batch(&entries)?;
        self.since_checkpoint += entries.len() as u64;
        let mut ids = Vec::with_capacity(batch.len());
        for (paths, measure) in batch {
            ids.push(self.tree.insert_raw(paths, *measure)?);
        }
        self.maybe_auto_checkpoint()?;
        Ok(ids)
    }

    /// Durable delete by raw paths + measure. Returns `false` when no
    /// matching record exists (the no-op is still logged for replay
    /// fidelity).
    pub fn delete_raw<S: AsRef<str>>(
        &mut self,
        paths: &[Vec<S>],
        measure: Measure,
    ) -> DcResult<bool> {
        self.tree.schema().validate_paths(paths)?;
        let entry = WalEntry::Delete {
            paths: paths
                .iter()
                .map(|d| d.iter().map(|s| s.as_ref().to_string()).collect())
                .collect(),
            measure,
        };
        self.log(&entry)?;
        let deleted = apply(&mut self.tree, &entry)?;
        self.maybe_auto_checkpoint()?;
        Ok(deleted)
    }

    /// Takes a checkpoint: serializes the tree (with its interning state)
    /// as the image for the current LSN, commits the manifest, and deletes
    /// the superseded segments and images. After this, recovery needs only
    /// the new image plus segments written from now on.
    pub fn checkpoint(&mut self) -> DcResult<()> {
        let (lsn, start_seq) = self.wal.prepare_checkpoint()?;
        self.fs.write_atomic(
            &self.dir.join(checkpoint_file_name(lsn, None)),
            &self.tree.to_bytes(),
        )?;
        self.wal.commit_checkpoint(lsn, start_seq, 0)?;
        for name in self.fs.list(&self.dir)? {
            if let Some((image_lsn, _)) = parse_checkpoint_file_name(&name) {
                if image_lsn != lsn {
                    self.fs.remove(&self.dir.join(&name))?;
                }
            }
        }
        self.since_checkpoint = 0;
        self.checkpoints += 1;
        Ok(())
    }

    /// Durability barrier: everything logged so far survives a crash once
    /// this returns (meaningful under the deferred [`SyncPolicy`]s).
    pub fn sync(&mut self) -> DcResult<()> {
        self.wal.sync()
    }
}

/// Applies one WAL entry to a tree (the replay step). Public so the
/// serving engine's recovery path can share the exact same semantics.
pub fn apply(tree: &mut DcTree, entry: &WalEntry) -> DcResult<bool> {
    match entry {
        WalEntry::Insert { paths, measure } => {
            tree.insert_raw(paths, *measure)?;
            Ok(true)
        }
        WalEntry::Delete { paths, measure } => {
            // Resolve the paths against the (replayed) schema; a miss means
            // the original call was a no-op too.
            let mut dims = Vec::with_capacity(paths.len());
            for (d, path) in paths.iter().enumerate() {
                match tree
                    .schema()
                    .dim(dc_common::DimensionId(d as u16))
                    .lookup_path(path)
                {
                    Some(id) => dims.push(id),
                    None => return Ok(false),
                }
            }
            let record = dc_hierarchy::Record::new(dims, *measure);
            tree.delete(&record)
        }
    }
}
