//! The durable wrapper: WAL + checkpoints + recovery around a [`DcTree`].

use std::path::{Path, PathBuf};

use dc_common::{DcResult, Measure, RecordId};
use dc_tree::{DcTree, DcTreeConfig};

use crate::wal::{WalEntry, WalReader, WalWriter};

/// When the log is fsynced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncMode {
    /// fsync after every mutation — nothing acknowledged is ever lost.
    Always,
    /// Leave intermediate durability to the OS; fsync at checkpoints.
    /// A crash may lose the unsynced suffix, never corrupt the store.
    OnCheckpoint,
}

/// Durability knobs.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// fsync policy for the log.
    pub sync: SyncMode,
    /// Automatically checkpoint after this many logged mutations
    /// (`0` = only on explicit [`DurableDcTree::checkpoint`] calls).
    pub checkpoint_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            sync: SyncMode::Always,
            checkpoint_every: 0,
        }
    }
}

/// A crash-safe DC-tree: mutations go to the write-ahead log first, the
/// in-memory tree second; recovery replays the log over the last
/// checkpoint. Queries go straight to the wrapped [`DcTree`]
/// ([`Self::tree`]).
#[derive(Debug)]
pub struct DurableDcTree {
    tree: DcTree,
    wal: WalWriter,
    dir: PathBuf,
    durability: DurabilityConfig,
    since_checkpoint: u64,
}

impl DurableDcTree {
    fn checkpoint_path(dir: &Path) -> PathBuf {
        dir.join("checkpoint.dct")
    }

    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    /// Opens (or creates) a durable tree in `dir`, recovering any previous
    /// state: last checkpoint + clean log tail. `make_tree` builds the
    /// initial tree when no checkpoint exists (supplying schema and
    /// config); its config also applies to recovered trees' replay.
    pub fn open(
        dir: impl AsRef<Path>,
        make_tree: impl FnOnce() -> DcTree,
        durability: DurabilityConfig,
    ) -> DcResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let checkpoint = Self::checkpoint_path(&dir);
        let mut tree = if checkpoint.exists() {
            DcTree::load_from(&checkpoint)?
        } else {
            make_tree()
        };
        // Replay the log tail over the checkpoint, truncating any torn end.
        let wal_path = Self::wal_path(&dir);
        let scan = WalReader::scan(&wal_path)?;
        for entry in &scan.entries {
            apply(&mut tree, entry)?;
        }
        if wal_path.exists() {
            scan.truncate_tail(&wal_path)?;
        }
        let wal = WalWriter::open(&wal_path)?;
        Ok(DurableDcTree {
            tree,
            wal,
            dir,
            durability,
            since_checkpoint: scan.entries.len() as u64,
        })
    }

    /// The wrapped tree, for queries (`range_query`, `group_by`, stats …).
    pub fn tree(&self) -> &DcTree {
        &self.tree
    }

    /// The tree's configuration.
    pub fn config(&self) -> &DcTreeConfig {
        self.tree.config()
    }

    /// Mutations logged since the last checkpoint.
    pub fn log_length(&self) -> u64 {
        self.since_checkpoint
    }

    fn log(&mut self, entry: &WalEntry) -> DcResult<()> {
        self.wal.append(entry)?;
        if self.durability.sync == SyncMode::Always {
            self.wal.sync()?;
        }
        self.since_checkpoint += 1;
        Ok(())
    }

    fn maybe_auto_checkpoint(&mut self) -> DcResult<()> {
        if self.durability.checkpoint_every > 0
            && self.since_checkpoint >= self.durability.checkpoint_every
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Durable insert: logged, then applied.
    pub fn insert_raw<S: AsRef<str>>(
        &mut self,
        paths: &[Vec<S>],
        measure: Measure,
    ) -> DcResult<RecordId> {
        let entry = WalEntry::Insert {
            paths: paths
                .iter()
                .map(|d| d.iter().map(|s| s.as_ref().to_string()).collect())
                .collect(),
            measure,
        };
        self.log(&entry)?;
        let id = self.tree.insert_raw(paths, measure)?;
        self.maybe_auto_checkpoint()?;
        Ok(id)
    }

    /// Durable delete by raw paths + measure. Returns `false` when no
    /// matching record exists (the no-op is still logged for replay
    /// fidelity).
    pub fn delete_raw<S: AsRef<str>>(
        &mut self,
        paths: &[Vec<S>],
        measure: Measure,
    ) -> DcResult<bool> {
        let entry = WalEntry::Delete {
            paths: paths
                .iter()
                .map(|d| d.iter().map(|s| s.as_ref().to_string()).collect())
                .collect(),
            measure,
        };
        self.log(&entry)?;
        let deleted = apply(&mut self.tree, &entry)?;
        self.maybe_auto_checkpoint()?;
        Ok(deleted)
    }

    /// Writes a checkpoint atomically (temp + rename) and starts a fresh
    /// log. After this, recovery needs only the new files.
    pub fn checkpoint(&mut self) -> DcResult<()> {
        self.wal.sync()?;
        let checkpoint = Self::checkpoint_path(&self.dir);
        let tmp = self.dir.join("checkpoint.tmp");
        self.tree.save_to(&tmp)?;
        std::fs::rename(&tmp, &checkpoint)?;
        // The image is durable; retire the log.
        let wal_path = Self::wal_path(&self.dir);
        std::fs::remove_file(&wal_path).ok();
        self.wal = WalWriter::open(&wal_path)?;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Syncs the log (meaningful under [`SyncMode::OnCheckpoint`]).
    pub fn sync(&mut self) -> DcResult<()> {
        self.wal.sync()
    }
}

/// Applies one WAL entry to a tree (the replay step).
fn apply(tree: &mut DcTree, entry: &WalEntry) -> DcResult<bool> {
    match entry {
        WalEntry::Insert { paths, measure } => {
            tree.insert_raw(paths, *measure)?;
            Ok(true)
        }
        WalEntry::Delete { paths, measure } => {
            // Resolve the paths against the (replayed) schema; a miss means
            // the original call was a no-op too.
            let mut dims = Vec::with_capacity(paths.len());
            for (d, path) in paths.iter().enumerate() {
                match tree
                    .schema()
                    .dim(dc_common::DimensionId(d as u16))
                    .lookup_path(path)
                {
                    Some(id) => dims.push(id),
                    None => return Ok(false),
                }
            }
            let record = dc_hierarchy::Record::new(dims, *measure);
            tree.delete(&record)
        }
    }
}
