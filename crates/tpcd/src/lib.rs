//! # dc-tpcd
//!
//! A deterministic, seeded generator for the data cube of the DC-tree
//! evaluation (§5.1).
//!
//! The paper derives its test cube from the TPC Benchmark D database by SQL
//! selection into a flat insert file. This crate generates the *same star
//! schema* (Fig. 8) with the *same hierarchy schemata* (Fig. 9) directly:
//!
//! | Dimension | Hierarchy (top → leaf)              |
//! |-----------|--------------------------------------|
//! | Customer  | Region → Nation → MktSegment → Customer |
//! | Supplier  | Region → Nation → Supplier           |
//! | Part      | Brand → Type → Part                  |
//! | Time      | Year → Month → Day                   |
//!
//! Four dimensions, 13 functional attributes, and the measure
//! *Extended Price* — the 14 attributes of the paper's records. Regions,
//! nations and market segments use the actual TPC-D vocabulary; cardinality
//! ratios follow the TPC-D scale-factor proportions (see
//! [`TpcdConfig::scaled`]).
//!
//! The substitution (real TPC-D data → this generator) is recorded in
//! `DESIGN.md`: the experiments depend only on hierarchy shapes, per-level
//! cardinalities and record counts, none of which require TPC's actual
//! string data.

use dc_common::{DimensionId, Measure};
use dc_hierarchy::{CubeSchema, HierarchySchema, Record};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The five TPC-D regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-D nations with their region index.
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ETHIOPIA", 0),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("PERU", 1),
    ("UNITED STATES", 1),
    ("CHINA", 2),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("JAPAN", 2),
    ("VIETNAM", 2),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("EGYPT", 4),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JORDAN", 4),
    ("SAUDI ARABIA", 4),
];

/// The five TPC-D market segments (per nation in the Fig. 9 hierarchy).
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Part types nested below each brand (six per brand, 150 brand–type pairs,
/// matching TPC-D's 150 part types in shape).
pub const PART_TYPES: [&str; 6] = [
    "STANDARD ANODIZED TIN",
    "SMALL PLATED COPPER",
    "MEDIUM BURNISHED NICKEL",
    "LARGE POLISHED STEEL",
    "ECONOMY BRUSHED BRASS",
    "PROMO COATED PEWTER",
];

const MONTH_DAYS: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct TpcdConfig {
    /// Number of fact records (lineitems) to generate.
    pub lineitems: usize,
    /// Number of distinct customers.
    pub customers: usize,
    /// Number of distinct suppliers.
    pub suppliers: usize,
    /// Number of distinct parts.
    pub parts: usize,
    /// First year of the Time dimension.
    pub first_year: u16,
    /// Number of years.
    pub num_years: u16,
    /// Zipf exponent for entity popularity. `0.0` (the default and the
    /// TPC-D setting) draws customers/suppliers/parts uniformly; realistic
    /// warehouses are closer to `0.8`–`1.2`, where a few entities dominate
    /// the fact table. Time stays uniform.
    pub skew: f64,
    /// RNG seed — equal seeds generate identical data.
    pub seed: u64,
}

impl TpcdConfig {
    /// Scales the dimension cardinalities from the fact count with TPC-D's
    /// SF-1 proportions (6 M lineitems : 150 k customers : 10 k suppliers :
    /// 200 k parts), clamped to sensible minima for small runs.
    pub fn scaled(lineitems: usize, seed: u64) -> Self {
        TpcdConfig {
            lineitems,
            customers: (lineitems / 40).max(50),
            suppliers: (lineitems / 600).max(10),
            parts: (lineitems / 30).max(50),
            first_year: 1992,
            num_years: 7,
            skew: 0.0,
            seed,
        }
    }

    /// Same cardinalities with a Zipf popularity skew.
    pub fn scaled_with_skew(lineitems: usize, seed: u64, skew: f64) -> Self {
        TpcdConfig {
            skew,
            ..Self::scaled(lineitems, seed)
        }
    }
}

/// Inverse-CDF Zipf sampler over ranks `0..n` with exponent `s`
/// (`s == 0` degenerates to uniform). Precomputes the cumulative mass once;
/// sampling is a binary search.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Draws a rank in `0..n` (rank 0 is the most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// The generated cube: a fully interned schema plus the fact records.
#[derive(Clone, Debug)]
pub struct TpcdData {
    /// Cube schema with every attribute value interned.
    pub schema: CubeSchema,
    /// The fact records, in generation (insert-file) order.
    pub records: Vec<Record>,
}

impl TpcdData {
    /// Reconstructs the raw top→leaf attribute paths of a record — the form
    /// consumed by the fully dynamic `DcTree::insert_raw`.
    pub fn paths_for(&self, record: &Record) -> Vec<Vec<String>> {
        (0..self.schema.num_dims())
            .map(|d| {
                let h = self.schema.dim(DimensionId(d as u16));
                let leaf = record.dims[d];
                (0..h.top_level())
                    .rev()
                    .map(|level| {
                        h.name(h.ancestor_at(leaf, level).unwrap())
                            .unwrap()
                            .to_string()
                    })
                    .collect()
            })
            .collect()
    }
}

/// The cube schema of Fig. 9 (no values interned yet).
pub fn cube_schema() -> CubeSchema {
    CubeSchema::new(
        vec![
            HierarchySchema::new(
                "Customer",
                vec![
                    "Region".into(),
                    "Nation".into(),
                    "MktSegment".into(),
                    "Customer".into(),
                ],
            ),
            HierarchySchema::new(
                "Supplier",
                vec!["Region".into(), "Nation".into(), "Supplier".into()],
            ),
            HierarchySchema::new("Part", vec!["Brand".into(), "Type".into(), "Part".into()]),
            HierarchySchema::new("Time", vec!["Year".into(), "Month".into(), "Day".into()]),
        ],
        "ExtendedPrice",
    )
}

/// Generates the cube deterministically from `config`.
pub fn generate(config: &TpcdConfig) -> TpcdData {
    let mut schema = cube_schema();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Dimension members. Each entity's hierarchy position is fixed by its
    // key (TPC-D assigns nation/segment/brand per key).
    let customer_paths: Vec<[String; 4]> = (0..config.customers)
        .map(|i| {
            let (nation, region) = NATIONS[i % NATIONS.len()];
            let segment = SEGMENTS[(i / NATIONS.len()) % SEGMENTS.len()];
            [
                REGIONS[region].to_string(),
                nation.to_string(),
                segment.to_string(),
                format!("Customer#{:09}", i + 1),
            ]
        })
        .collect();
    let supplier_paths: Vec<[String; 3]> = (0..config.suppliers)
        .map(|i| {
            let (nation, region) = NATIONS[i % NATIONS.len()];
            [
                REGIONS[region].to_string(),
                nation.to_string(),
                format!("Supplier#{:09}", i + 1),
            ]
        })
        .collect();
    let part_paths: Vec<[String; 3]> = (0..config.parts)
        .map(|i| {
            let brand = format!("Brand#{}{}", i % 5 + 1, (i / 5) % 5 + 1);
            let ptype = PART_TYPES[(i / 25) % PART_TYPES.len()];
            [brand, ptype.to_string(), format!("Part#{:09}", i + 1)]
        })
        .collect();

    let zipf_c = ZipfSampler::new(customer_paths.len(), config.skew);
    let zipf_s = ZipfSampler::new(supplier_paths.len(), config.skew);
    let zipf_p = ZipfSampler::new(part_paths.len(), config.skew);

    let mut records = Vec::with_capacity(config.lineitems);
    for _ in 0..config.lineitems {
        let c = &customer_paths[zipf_c.sample(&mut rng)];
        let s = &supplier_paths[zipf_s.sample(&mut rng)];
        let p = &part_paths[zipf_p.sample(&mut rng)];
        let year = config.first_year + rng.gen_range(0..config.num_years);
        let month = rng.gen_range(1..=12u8);
        let day = rng.gen_range(1..=MONTH_DAYS[(month - 1) as usize]);
        let t = [
            format!("{year}"),
            format!("{year}-{month:02}"),
            format!("{year}-{month:02}-{day:02}"),
        ];

        // Extended price = quantity × unit price, in cents (TPC-D's
        // l_extendedprice is l_quantity × p_retailprice).
        let quantity = rng.gen_range(1..=50i64);
        let unit_price_cents = rng.gen_range(90_000..=190_000i64) / 100;
        let measure: Measure = quantity * unit_price_cents;

        let record = schema
            .intern_record(&[c.to_vec(), s.to_vec(), p.to_vec(), t.to_vec()], measure)
            .expect("generated paths are well-formed");
        records.push(record);
    }

    TpcdData { schema, records }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = generate(&TpcdConfig::scaled(500, 7));
        let b = generate(&TpcdConfig::scaled(500, 7));
        assert_eq!(a.records, b.records);
        let c = generate(&TpcdConfig::scaled(500, 8));
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn schema_matches_figure_9() {
        let s = cube_schema();
        assert_eq!(s.num_dims(), 4);
        // 4 + 3 + 3 + 3 = 13 functional attributes (the X-tree's axes).
        assert_eq!(s.num_flat_axes(), 13);
        assert_eq!(s.measure_name(), "ExtendedPrice");
        let cust = s.dim(DimensionId(0));
        assert_eq!(cust.schema().attribute_name(3), Some("Region"));
        assert_eq!(cust.schema().attribute_name(0), Some("Customer"));
    }

    #[test]
    fn hierarchies_have_tpcd_shape() {
        let data = generate(&TpcdConfig::scaled(2000, 1));
        let cust = data.schema.dim(DimensionId(0));
        assert_eq!(cust.num_values_at(3), 5, "5 regions");
        assert_eq!(cust.num_values_at(2), 25, "25 nations");
        // Segments hang below nations: at most 5 per nation.
        assert!(cust.num_values_at(1) <= 25 * 5);
        let time = data.schema.dim(DimensionId(3));
        assert_eq!(time.num_values_at(2), 7, "7 years");
        assert!(time.num_values_at(1) <= 7 * 12);
    }

    #[test]
    fn every_nation_sits_under_its_region() {
        let data = generate(&TpcdConfig::scaled(1000, 2));
        let cust = data.schema.dim(DimensionId(0));
        for nation in cust.values_at(2) {
            let nation_name = cust.name(nation).unwrap().to_string();
            let region = cust.parent(nation).unwrap().unwrap();
            let region_name = cust.name(region).unwrap();
            let expected = NATIONS
                .iter()
                .find(|(n, _)| *n == nation_name)
                .map(|&(_, r)| REGIONS[r])
                .unwrap();
            assert_eq!(region_name, expected);
        }
    }

    #[test]
    fn records_have_valid_leaves_and_positive_measure() {
        let data = generate(&TpcdConfig::scaled(800, 3));
        assert_eq!(data.records.len(), 800);
        for r in &data.records {
            data.schema.validate_record(r).unwrap();
            assert!(r.measure > 0);
            // quantity ≤ 50, unit price ≤ 1900 cents
            assert!(r.measure <= 50 * 1900);
        }
    }

    #[test]
    fn paths_roundtrip_through_intern() {
        let data = generate(&TpcdConfig::scaled(50, 4));
        let mut schema = cube_schema();
        for r in &data.records {
            let paths = data.paths_for(r);
            let again = schema.intern_record(&paths, r.measure).unwrap();
            // Leaf names must agree (IDs may differ in the fresh schema).
            for d in 0..4 {
                let orig = data
                    .schema
                    .dim(DimensionId(d))
                    .name(r.dims[d as usize])
                    .unwrap();
                let new = schema
                    .dim(DimensionId(d))
                    .name(again.dims[d as usize])
                    .unwrap();
                assert_eq!(orig, new);
            }
        }
    }

    #[test]
    fn zipf_sampler_is_uniform_at_zero_and_head_heavy_at_one() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let uniform = ZipfSampler::new(100, 0.0);
        let mut head = 0usize;
        for _ in 0..10_000 {
            if uniform.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top 10% of ranks gets ≈10% of draws under uniformity.
        assert!((800..1200).contains(&head), "uniform head share {head}");

        let skewed = ZipfSampler::new(100, 1.0);
        let mut head = 0usize;
        for _ in 0..10_000 {
            if skewed.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under Zipf(1) over 100 ranks the top 10% carries ≈56% of mass.
        assert!(head > 4500, "skewed head share {head}");
    }

    #[test]
    fn skewed_generation_is_deterministic_and_valid() {
        let a = generate(&TpcdConfig::scaled_with_skew(800, 9, 1.0));
        let b = generate(&TpcdConfig::scaled_with_skew(800, 9, 1.0));
        assert_eq!(a.records, b.records);
        for r in &a.records {
            a.schema.validate_record(r).unwrap();
        }
        // The most popular customer dominates relative to uniform.
        let mut counts = std::collections::HashMap::new();
        for r in &a.records {
            *counts.entry(r.dims[0]).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(
            max > a.records.len() / 50,
            "Zipf(1) hot customer should carry well over 2% of facts, got {max}"
        );
    }

    #[test]
    fn cardinalities_scale_with_tpcd_ratios() {
        let c = TpcdConfig::scaled(300_000, 0);
        assert_eq!(c.customers, 7_500);
        assert_eq!(c.suppliers, 500);
        assert_eq!(c.parts, 10_000);
        let tiny = TpcdConfig::scaled(100, 0);
        assert!(tiny.customers >= 50 && tiny.suppliers >= 10 && tiny.parts >= 50);
    }

    #[test]
    fn day_leaves_respect_month_lengths() {
        let data = generate(&TpcdConfig::scaled(3000, 5));
        let time = data.schema.dim(DimensionId(3));
        for day in time.values_at(0) {
            let name = time.name(day).unwrap();
            let d: u8 = name[8..10].parse().unwrap();
            let m: usize = name[5..7].parse::<usize>().unwrap() - 1;
            assert!(d >= 1 && d <= MONTH_DAYS[m]);
        }
    }
}
