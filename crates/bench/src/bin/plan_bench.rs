//! Cost-based-planner bench: the same statement stream executed twice —
//! once through the planner (`execute`, free to pick descent / bitmap /
//! materialized view / scan per shard) and once pinned to always-descend
//! (the engine's only strategy before `dc-plan`). Three workloads:
//!
//! * `coarse_rollups` — unfiltered `GROUP BY` at the coarsest functional
//!   level of each dimension: the view lattice answers these from a handful
//!   of cells, descent walks the whole tree. The planner must win here
//!   (that gap is this bench's pass/fail criterion).
//! * `selective_scalars` — 1%-selectivity filtered scalars: descent is
//!   already optimal, so the planner's job is to *match* it (its overhead
//!   is the cost model, bounded by the `max_overhead` check).
//! * `zipf_mix` — the dashboard shape mix (scalar + grouped + multi-measure
//!   at Zipf-skewed popularity), the realistic blend.
//!
//! Emits `results/plan_bench.json` (consumed by `bench_gate`; the gated key
//! is `planner_mean_us`) plus the planner's own STATS counters so the
//! misprediction rate is visible in CI artifacts.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin plan_bench [records] [queries_per_workload]
//! ```

use std::time::Instant;

use dc_common::{AggregateOp, DimensionId};
use dc_mds::Mds;
use dc_plan::Backend;
use dc_ql::ParsedStatement;
use dc_query::{QueryShape, RangeQueryGen, ValuePick, ZipfQueryMix};
use dc_serve::{EngineConfig, PartitionPolicy, PlannerOptions, ShardedDcTree};
use dc_tpcd::{generate, TpcdConfig};

struct Workload {
    name: &'static str,
    statements: Vec<ParsedStatement>,
    /// The planner must beat always-descend here.
    must_win: bool,
}

struct Row {
    name: &'static str,
    planner_mean_us: f64,
    descend_mean_us: f64,
    speedup: f64,
    must_win: bool,
}

fn stmt(shape: QueryShape) -> ParsedStatement {
    ParsedStatement {
        ops: shape.ops,
        filter: shape.filter,
        group_by: shape.group_by,
        top: None,
        joins: Vec::new(),
    }
}

fn mean_us(total_secs: f64, n: usize) -> f64 {
    total_secs * 1e6 / n as f64
}

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let queries: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    if records == 0 || queries == 0 {
        eprintln!("usage: plan_bench [records > 0] [queries_per_workload > 0]");
        std::process::exit(2);
    }

    println!("generating TPC-D cube: {records} lineitems…");
    let data = generate(&TpcdConfig::scaled(records, 42));
    let engine = ShardedDcTree::new(
        data.schema.clone(),
        EngineConfig {
            num_shards: 2,
            policy: PartitionPolicy::Hash,
            planner: Some(PlannerOptions::default()),
            // The cache would answer repeats before the planner runs; this
            // bench measures backend choice, not caching.
            cache: None,
            ..Default::default()
        },
    )
    .expect("engine");
    for r in &data.records {
        engine
            .insert_raw(&data.paths_for(r), r.measure)
            .expect("insert");
    }
    engine.flush();

    // Workload construction (deterministic).
    let mut workloads = Vec::new();
    {
        // Coarsest functional roll-up of each dimension, unfiltered,
        // cycled until `queries` statements.
        let mut statements = Vec::with_capacity(queries);
        let dims = data.schema.num_dims();
        for i in 0..queries {
            let dim = DimensionId((i % dims) as u16);
            let level = data.schema.dim(dim).top_level() - 1;
            statements.push(stmt(QueryShape {
                filter: Mds::all(&data.schema),
                group_by: Some((dim, level)),
                ops: vec![AggregateOp::Sum, AggregateOp::Count],
            }));
        }
        workloads.push(Workload {
            name: "coarse_rollups",
            statements,
            must_win: true,
        });
    }
    {
        let mut gen = RangeQueryGen::new(0.01, ValuePick::ContiguousRun, 7);
        let statements = (0..queries)
            .map(|_| stmt(QueryShape::scalar_sum(gen.generate(&data.schema))))
            .collect();
        workloads.push(Workload {
            name: "selective_scalars",
            statements,
            must_win: false,
        });
    }
    {
        let mut gen = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 8);
        let mut mix = ZipfQueryMix::generate_shapes(&data.schema, 64, 0.9, &mut gen, 9);
        let statements = (0..queries)
            .map(|_| stmt(mix.next_shape().clone()))
            .collect();
        workloads.push(Workload {
            name: "zipf_mix",
            statements,
            must_win: false,
        });
    }

    println!(
        "\nplanner vs always-descend: {} workloads × {queries} queries, 2 shards, cache off",
        workloads.len()
    );
    println!(
        "{:>18} {:>14} {:>14} {:>9}",
        "workload", "planner µs", "descend µs", "speedup"
    );

    let mut rows: Vec<Row> = Vec::new();
    for w in &workloads {
        // Warmup: fault in snapshots and per-thread scratch on both paths.
        for s in w.statements.iter().take(16) {
            std::hint::black_box(engine.execute(s).expect("plan warmup"));
            std::hint::black_box(
                engine
                    .execute_forced(s, Backend::Descend)
                    .expect("descend warmup"),
            );
        }
        let t0 = Instant::now();
        for s in &w.statements {
            std::hint::black_box(engine.execute(s).expect("planner query"));
        }
        let planner_mean_us = mean_us(t0.elapsed().as_secs_f64(), w.statements.len());
        let t1 = Instant::now();
        for s in &w.statements {
            std::hint::black_box(
                engine
                    .execute_forced(s, Backend::Descend)
                    .expect("descend query"),
            );
        }
        let descend_mean_us = mean_us(t1.elapsed().as_secs_f64(), w.statements.len());
        let speedup = descend_mean_us / planner_mean_us;
        println!(
            "{:>18} {:>14.1} {:>14.1} {:>8.2}x",
            w.name, planner_mean_us, descend_mean_us, speedup
        );
        rows.push(Row {
            name: w.name,
            planner_mean_us,
            descend_mean_us,
            speedup,
            must_win: w.must_win,
        });
    }

    // Planner counters (misprediction rate is the cost model's honesty
    // metric: estimated vs. measured page reads per planned query).
    let m = engine.metrics();
    let plans = m.plan.plans.load(std::sync::atomic::Ordering::Relaxed);
    let mispredictions = m
        .plan
        .mispredictions
        .load(std::sync::atomic::Ordering::Relaxed);
    let mispredict_rate = if plans > 0 {
        mispredictions as f64 / plans as f64
    } else {
        0.0
    };
    let chose: Vec<(String, u64)> = Backend::ALL
        .iter()
        .map(|&b| {
            (
                b.name().to_string(),
                m.plan.chosen(b).load(std::sync::atomic::Ordering::Relaxed),
            )
        })
        .collect();
    println!(
        "\nplanner counters: {plans} plans, chose {:?}, misprediction rate {:.1}%",
        chose,
        mispredict_rate * 100.0
    );

    let wins = rows.iter().all(|r| !r.must_win || r.speedup > 1.0);
    // On workloads where descend is already optimal the planner may only
    // add bounded overhead (cost model + stats reads), not multiples.
    let max_overhead = rows
        .iter()
        .filter(|r| !r.must_win)
        .map(|r| 1.0 / r.speedup)
        .fold(0.0f64, f64::max);

    // JSON report.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"records\": {records},\n"));
    json.push_str(&format!("  \"queries_per_workload\": {queries},\n"));
    json.push_str("  \"shards\": 2,\n");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"planner_mean_us\": {:.1}, \"descend_mean_us\": {:.1}, \
             \"planner_speedup\": {:.3}, \"must_win\": {}}}{}\n",
            r.name,
            r.planner_mean_us,
            r.descend_mean_us,
            r.speedup,
            r.must_win,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"planner_counters\": {\n");
    json.push_str(&format!("    \"plans\": {plans},\n"));
    json.push_str("    \"chose\": {");
    for (i, (name, n)) in chose.iter().enumerate() {
        json.push_str(&format!(
            "\"{name}\": {n}{}",
            if i + 1 < chose.len() { ", " } else { "" }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "    \"misprediction_rate\": {mispredict_rate:.3}\n"
    ));
    json.push_str("  },\n");
    json.push_str(&format!("  \"planner_beats_descend_on_rollups\": {wins}\n"));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/plan_bench.json";
    std::fs::write(path, &json).expect("write report");
    println!("report written to {path}");

    engine.shutdown();

    if !wins {
        eprintln!(
            "FAIL: the cost-based planner did not beat always-descend on the coarse \
             roll-up workload — the view lattice should answer those from O(groups) cells"
        );
        std::process::exit(1);
    }
    if max_overhead > 2.0 {
        eprintln!(
            "FAIL: planner overhead {max_overhead:.2}x on a descend-optimal workload — \
             the cost model should route those straight to descent at near-zero cost"
        );
        std::process::exit(1);
    }
    println!("PASS: planner beats always-descend on roll-ups, matches it when descent is optimal");
}
