//! Benchmarks the aggregate cache (`dc-cache`) on a Zipf-skewed dashboard
//! workload: A1b-shape roll-up queries (one dimension pinned to a single
//! coarse value, every other dimension at ALL) drawn from a fixed template
//! pool with Zipf popularity, while a trickle of inserts exercises the
//! write-through delta maintenance. Runs the identical query/write stream
//! through a cached and an uncached serving engine and reports the
//! steady-state mean-latency speedup plus the cache counters from `STATS`.
//! Emits a JSON report to `results/cache_bench.json`.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin cache_bench [records] [queries] [theta]
//! ```

use std::time::{Duration, Instant};

use dc_common::DimensionId;
use dc_mds::{DimSet, Mds};
use dc_query::ZipfQueryMix;
use dc_serve::{EngineConfig, PartitionPolicy, ShardedDcTree};
use dc_tpcd::{generate, TpcdConfig, TpcdData};

const MAX_TEMPLATES: usize = 256;

/// Every A1b roll-up of the cube: one dimension constrained to a single
/// value at a coarse level (1..top), the rest at ALL — the queries behind a
/// "sales by region / by year / by segment" dashboard. Coarse levels come
/// first, so Zipf rank 0 is the coarsest (hottest) roll-up.
fn rollup_templates(data: &TpcdData) -> Vec<Mds> {
    let schema = &data.schema;
    let mut out = Vec::new();
    let max_top = (0..schema.num_dims() as u16)
        .map(|d| schema.dim(DimensionId(d)).top_level())
        .max()
        .unwrap_or(0);
    for depth in 1..max_top {
        for d in 0..schema.num_dims() as u16 {
            let h = schema.dim(DimensionId(d));
            if depth >= h.top_level() {
                continue;
            }
            let level = h.top_level() - depth;
            for v in h.values_at(level) {
                let dims = (0..schema.num_dims() as u16)
                    .map(|dd| {
                        if dd == d {
                            DimSet::singleton(v)
                        } else {
                            DimSet::singleton(schema.dim(DimensionId(dd)).all())
                        }
                    })
                    .collect();
                out.push(Mds::new(dims));
                if out.len() >= MAX_TEMPLATES {
                    return out;
                }
            }
        }
    }
    out
}

struct Run {
    ingest_per_sec: f64,
    mean_query: Duration,
    queries_per_sec: f64,
    stats_json: String,
}

/// Ingests the cube, warms up, then runs the timed Zipf query stream with a
/// trickle of inserts (one per `TRICKLE_EVERY` queries). `cached` toggles
/// the engine's aggregate cache; everything else — records, draw sequence,
/// trickle — is identical across the two runs.
fn bench(data: &TpcdData, templates: &[Mds], queries: usize, theta: f64, cached: bool) -> Run {
    const TRICKLE_EVERY: usize = 50;
    let dim = DimensionId(0);
    let level = data.schema.dim(dim).top_level() - 1;
    let mut config = EngineConfig {
        num_shards: 4,
        policy: PartitionPolicy::ByDimension { dim, level },
        ..Default::default()
    };
    if !cached {
        config.cache = None;
    }
    let engine = ShardedDcTree::new(data.schema.clone(), config).expect("engine");

    let t0 = Instant::now();
    for r in &data.records {
        engine
            .insert_raw(&data.paths_for(r), r.measure)
            .expect("insert");
    }
    engine.flush();
    let ingest = t0.elapsed();

    // Warm up: touch the whole pool once so the cached run measures steady
    // state (every template resident) rather than cold misses.
    for q in templates {
        std::hint::black_box(engine.range_summary(q).expect("warmup query"));
    }

    let mut mix = ZipfQueryMix::new(templates.to_vec(), theta, 99);
    let mut trickle = data.records.iter().cycle();
    let t0 = Instant::now();
    for i in 0..queries {
        if i % TRICKLE_EVERY == TRICKLE_EVERY - 1 {
            let r = trickle.next().expect("records");
            engine
                .insert_raw(&data.paths_for(r), r.measure ^ 1)
                .expect("trickle insert");
        }
        let q = mix.next();
        std::hint::black_box(engine.range_summary(q).expect("query"));
    }
    let query_time = t0.elapsed();
    engine.flush();

    let run = Run {
        ingest_per_sec: data.records.len() as f64 / ingest.as_secs_f64(),
        mean_query: query_time / queries as u32,
        queries_per_sec: queries as f64 / query_time.as_secs_f64(),
        stats_json: engine.metrics().to_json(),
    };
    engine.shutdown();
    run
}

/// The raw value of `"key":` in the flat STATS JSON (counters only — the
/// payload is machine-generated and regular, no parser needed).
fn json_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let queries: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);
    let theta: f64 = std::env::args()
        .nth(3)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1.0);
    if records == 0 || queries == 0 {
        eprintln!("usage: cache_bench [records > 0] [queries > 0] [theta >= 0]");
        std::process::exit(2);
    }

    println!("generating TPC-D cube: {records} lineitems…");
    let data = generate(&TpcdConfig::scaled(records, 42));
    let templates = rollup_templates(&data);
    println!(
        "workload: {queries} Zipf(θ={theta}) draws over {} A1b roll-up templates, \
         1 trickle insert per 50 queries\n",
        templates.len()
    );

    let uncached = bench(&data, &templates, queries, theta, false);
    let cached = bench(&data, &templates, queries, theta, true);

    let speedup = uncached.mean_query.as_secs_f64() / cached.mean_query.as_secs_f64();
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "engine", "ingest rec/s", "mean query", "queries/s"
    );
    for (label, run) in [("uncached", &uncached), ("cached", &cached)] {
        println!(
            "{:>10} {:>14.0} {:>14?} {:>14.1}",
            label, run.ingest_per_sec, run.mean_query, run.queries_per_sec
        );
    }
    println!("\nsteady-state mean query speedup (cached vs uncached): {speedup:.2}x");

    println!("cache counters (via STATS):");
    let mut counters = Vec::new();
    for key in [
        "hits",
        "semantic_hits",
        "misses",
        "hit_rate",
        "patches",
        "invalidations",
        "insertions",
        "evictions",
        "entries",
    ] {
        let v = json_field(&cached.stats_json, key)
            .unwrap_or("0")
            .to_string();
        println!("  {key:<14} {v}");
        counters.push((key, v));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"records\": {records},\n"));
    json.push_str(&format!("  \"queries\": {queries},\n"));
    json.push_str(&format!("  \"zipf_theta\": {theta},\n"));
    json.push_str(&format!("  \"templates\": {},\n", templates.len()));
    json.push_str("  \"workload\": \"A1b roll-ups, Zipf popularity, trickle inserts\",\n");
    for (label, run) in [("uncached", &uncached), ("cached", &cached)] {
        json.push_str(&format!(
            "  \"{label}\": {{\"ingest_records_per_sec\": {:.1}, \
             \"mean_query_us\": {:.2}, \"queries_per_sec\": {:.1}}},\n",
            run.ingest_per_sec,
            run.mean_query.as_secs_f64() * 1e6,
            run.queries_per_sec,
        ));
    }
    json.push_str("  \"cache\": {");
    for (i, (key, v)) in counters.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{key}\": {v}"));
    }
    json.push_str("},\n");
    json.push_str(&format!("  \"mean_query_speedup\": {speedup:.3}\n"));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/cache_bench.json";
    std::fs::write(path, &json).expect("write report");
    println!("\nreport written to {path}");

    if speedup < 5.0 {
        eprintln!(
            "NOTE: speedup below the 5x steady-state target — check for a loaded \
             host or a tiny cube (small trees make descents cheap enough that the \
             cache's constant-time hits win less)."
        );
    }
}
