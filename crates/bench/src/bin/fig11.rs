//! **Figure 11** — insertion time.
//!
//! (a) Total insertion time of the DC-tree vs the X-tree while loading the
//!     TPC-D cube record-at-a-time, over a sweep of cube sizes.
//! (b) Per-record insertion time of the DC-tree (the paper reports ≈25 ms on
//!     a 1999 HP C160; the claim to reproduce is that it is flat in N and
//!     small enough to keep the warehouse permanently up to date).
//!
//! ```sh
//! cargo run --release -p dc-bench --bin fig11 [max_records]
//! ```
//!
//! The sweep doubles from 12 500 up to `max_records` (default 100 000; pass
//! 300000 for the paper's full range).

use dc_bench::harness::build_engines;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let mut sizes = Vec::new();
    let mut n = 12_500;
    while n <= max_n {
        sizes.push(n);
        n *= 2;
    }
    if sizes.last().copied() != Some(max_n) {
        sizes.push(max_n);
    }

    println!("Figure 11(a): total insertion time (record-at-a-time load)");
    println!(
        "{:>10} {:>16} {:>16} {:>16} {:>8}",
        "records", "DC-tree", "X-tree", "bitmap idx", "DC/X"
    );
    let mut per_record = Vec::new();
    for &n in &sizes {
        let e = build_engines(n, 42);
        let ratio = e.dc_insert_time.as_secs_f64() / e.x_insert_time.as_secs_f64();
        println!(
            "{n:>10} {:>16?} {:>16?} {:>16?} {ratio:>7.1}x",
            e.dc_insert_time, e.x_insert_time, e.bitmap_insert_time
        );
        per_record.push((n, e.dc_insert_time.as_secs_f64() * 1e6 / n as f64));
    }

    println!("\nFigure 11(b): DC-tree insertion time per data record");
    println!("{:>10} {:>16}", "records", "µs / record");
    for (n, us) in per_record {
        println!("{n:>10} {us:>16.1}");
    }
    println!(
        "\nPaper: X-tree loads significantly faster in total (11a), while a \
         single DC-tree insert stays small and flat in N (11b), so \"the \
         dynamic insertion of data records has no significant impact on the \
         runtime of a data warehouse\"."
    );
}
