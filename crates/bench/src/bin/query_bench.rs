//! Query-executor microbench: a selectivity × shards × pool-workers matrix
//! over the TPC-D cube, measuring per-query latency of the scatter-gather
//! path itself (cache disabled), plus an allocation audit proving the
//! steady-state `range_summary` path performs **zero heap allocations per
//! shard visit**: a counting global allocator tracks allocations per query
//! at 1 and 4 shards on the sequential path, and the bench exits non-zero
//! if the count grows with the number of visited shards.
//!
//! Emits a JSON report to `results/query_bench.json` (consumed by
//! `bench_gate`).
//!
//! ```sh
//! cargo run --release -p dc-bench --bin query_bench [records] [queries_per_cell]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use dc_common::DimensionId;
use dc_query::{RangeQueryGen, ValuePick};
use dc_serve::{EngineConfig, PartitionPolicy, ShardedDcTree};
use dc_tpcd::{generate, TpcdConfig, TpcdData};

/// Counts every heap acquisition (alloc, alloc_zeroed, realloc) on every
/// thread. Frees are not counted: the steady-state claim is about taking
/// memory on the query path, and the preparation scratch recycles its
/// buffers instead of freeing them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const SELECTIVITIES: [f64; 3] = [0.01, 0.05, 0.25];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Fixed (not sized by the host) so the report shape is identical across
/// machines — `bench_gate` matches values by position.
const POOL_WORKERS: [usize; 2] = [0, 2];

struct Cell {
    shards: usize,
    workers: usize,
    sel: f64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
    fanout: f64,
    allocs_per_query: f64,
}

fn quantile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e6
}

/// One engine (shards × workers), measured at every selectivity.
fn bench_engine(data: &TpcdData, shards: usize, workers: usize, queries: usize) -> Vec<Cell> {
    let dim = DimensionId(0); // Customer: Region is the top functional level
    let level = data.schema.dim(dim).top_level() - 1;
    let engine = ShardedDcTree::new(
        data.schema.clone(),
        EngineConfig {
            num_shards: shards,
            policy: PartitionPolicy::ByDimension { dim, level },
            parallel_queries: workers > 0,
            pool_workers: (workers > 0).then_some(workers),
            // The cache would absorb descents and hide the executor; this
            // bench measures the scatter-gather path itself.
            cache: None,
            ..Default::default()
        },
    )
    .expect("engine");
    for r in &data.records {
        engine
            .insert_raw(&data.paths_for(r), r.measure)
            .expect("insert");
    }
    engine.flush();

    let mut cells = Vec::new();
    for (i, &sel) in SELECTIVITIES.iter().enumerate() {
        let mut gen = RangeQueryGen::new(sel, ValuePick::ContiguousRun, 7 + i as u64);
        let qs: Vec<_> = (0..queries).map(|_| gen.generate(&data.schema)).collect();
        // Warmup pass: faults in the shard snapshots and fills the
        // thread-local preparation scratch (the word pool and level
        // buffers), so the measured pass below is steady-state.
        for q in &qs {
            std::hint::black_box(engine.range_summary(q).expect("query"));
        }
        let visits0 = engine.metrics().shard_visits.load(Relaxed);
        let mut lat: Vec<Duration> = Vec::with_capacity(qs.len());
        let a0 = ALLOCS.load(Relaxed);
        let t0 = Instant::now();
        for q in &qs {
            let q0 = Instant::now();
            std::hint::black_box(engine.range_summary(q).expect("query"));
            lat.push(q0.elapsed()); // within capacity: no allocation
        }
        let total = t0.elapsed();
        let allocs = ALLOCS.load(Relaxed) - a0;
        let visits = engine.metrics().shard_visits.load(Relaxed) - visits0;
        lat.sort_unstable();
        cells.push(Cell {
            shards,
            workers,
            sel,
            mean_us: total.as_secs_f64() * 1e6 / qs.len() as f64,
            p50_us: quantile_us(&lat, 0.50),
            p99_us: quantile_us(&lat, 0.99),
            fanout: visits as f64 / qs.len() as f64,
            allocs_per_query: allocs as f64 / qs.len() as f64,
        });
    }
    engine.shutdown();
    cells
}

/// Mean `allocs_per_query` / `fanout` across the sequential (workers = 0)
/// cells at a given shard count.
fn sequential_profile(cells: &[Cell], shards: usize) -> (f64, f64) {
    let seq: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.workers == 0 && c.shards == shards)
        .collect();
    let n = seq.len() as f64;
    (
        seq.iter().map(|c| c.allocs_per_query).sum::<f64>() / n,
        seq.iter().map(|c| c.fanout).sum::<f64>() / n,
    )
}

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let queries: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150);
    if records == 0 || queries == 0 {
        eprintln!("usage: query_bench [records > 0] [queries_per_cell > 0]");
        std::process::exit(2);
    }

    println!("generating TPC-D cube: {records} lineitems…");
    let data = generate(&TpcdConfig::scaled(records, 42));
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!(
        "\nexecutor matrix: shards {SHARD_COUNTS:?} × pool workers {POOL_WORKERS:?} × \
         selectivity {SELECTIVITIES:?}, {queries} queries/cell, cache off ({cores} core(s))"
    );
    println!(
        "{:>7} {:>8} {:>6} {:>11} {:>10} {:>10} {:>8} {:>13}",
        "shards", "workers", "sel", "mean µs", "p50 µs", "p99 µs", "fanout", "allocs/query"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for &shards in &SHARD_COUNTS {
        for &workers in &POOL_WORKERS {
            let engine_cells = bench_engine(&data, shards, workers, queries);
            for c in &engine_cells {
                println!(
                    "{:>7} {:>8} {:>6} {:>11.1} {:>10.1} {:>10.1} {:>8.2} {:>13.1}",
                    c.shards,
                    c.workers,
                    c.sel,
                    c.mean_us,
                    c.p50_us,
                    c.p99_us,
                    c.fanout,
                    c.allocs_per_query
                );
            }
            cells.extend(engine_cells);
        }
    }

    // The zero-allocation audit: on the sequential path the per-query
    // allocation count is a constant (range preparation + a handful of
    // pre-sized gather vectors), so it must not grow as queries visit more
    // shards. Divide any growth by the extra shard visits to state it in
    // the acceptance criterion's unit.
    let (apq_1, fanout_1) = sequential_profile(&cells, 1);
    let (apq_4, fanout_4) = sequential_profile(&cells, 4);
    let extra_visits = fanout_4 - fanout_1;
    let per_extra_visit = if extra_visits > 0.25 {
        (apq_4 - apq_1) / extra_visits
    } else {
        // Degenerate workload (fanout barely grew): fall back to the raw
        // per-query delta, which the check below still bounds at ~zero.
        apq_4 - apq_1
    };
    println!(
        "\nsequential alloc audit — allocs/query: {apq_1:.2} @ 1 shard, {apq_4:.2} @ 4 shards \
         ({extra_visits:.2} extra visits/query) → {per_extra_visit:.4} allocs per extra shard visit"
    );
    let zero_alloc = per_extra_visit.abs() < 0.01;
    if zero_alloc {
        println!("PASS: steady-state range queries allocate nothing per shard visit");
    }

    // JSON report.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"records\": {records},\n"));
    json.push_str(&format!("  \"queries_per_cell\": {queries},\n"));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str("  \"selectivities\": [0.01, 0.05, 0.25],\n");
    json.push_str("  \"partitioning\": \"ByDimension(Customer.Region)\",\n");
    json.push_str("  \"cache\": false,\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"pool_workers\": {}, \"selectivity\": {}, \
             \"mean_query_us\": {:.1}, \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}, \
             \"avg_shards_visited\": {:.2}, \"allocs_per_query\": {:.1}}}{}\n",
            c.shards,
            c.workers,
            c.sel,
            c.mean_us,
            c.p50_us,
            c.p99_us,
            c.fanout,
            c.allocs_per_query,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"alloc_check\": {\n");
    json.push_str(&format!(
        "    \"sequential_allocs_per_query_1_shard\": {apq_1:.2},\n"
    ));
    json.push_str(&format!(
        "    \"sequential_allocs_per_query_4_shards\": {apq_4:.2},\n"
    ));
    json.push_str(&format!(
        "    \"extra_shard_visits_per_query\": {extra_visits:.2},\n"
    ));
    json.push_str(&format!(
        "    \"allocs_per_extra_shard_visit\": {per_extra_visit:.4},\n"
    ));
    json.push_str(&format!(
        "    \"zero_alloc_per_shard_visit\": {zero_alloc}\n"
    ));
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/query_bench.json";
    std::fs::write(path, &json).expect("write report");
    println!("report written to {path}");

    if !zero_alloc {
        eprintln!(
            "FAIL: sequential range queries allocated {per_extra_visit:.4} times per extra \
             shard visit — the steady-state query path is supposed to reuse the thread-local \
             preparation scratch and pre-sized gather buffers instead of allocating"
        );
        std::process::exit(1);
    }
}
