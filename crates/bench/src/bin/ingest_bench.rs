//! Benchmarks the three ingest paths against each other on the TPC-D cube:
//! record-at-a-time `insert`, the amortized `insert_batch` descent, and the
//! bottom-up `bulk_load` builder, plus the serving engine's `INSERT_BATCH`
//! writer path end to end. Reports records/sec and time-to-queryable,
//! verifies all paths produce query-identical trees, and fails (exit 1)
//! unless bulk load beats record-at-a-time by `INGEST_BENCH_MIN_SPEEDUP`
//! (default 10×). Emits a JSON report to `results/ingest_bench.json`.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin ingest_bench [records] [batch_size]
//! ```

use std::time::{Duration, Instant};

use dc_mds::Mds;
use dc_query::{RangeQueryGen, ValuePick};
use dc_serve::{EngineConfig, PartitionPolicy, ShardedDcTree};
use dc_tpcd::{generate, TpcdConfig, TpcdData};
use dc_tree::{DcTree, DcTreeConfig};

struct IngestRun {
    name: &'static str,
    records_per_sec: f64,
    us_per_record: f64,
    /// Wall time until the structure answers queries (build + publish).
    time_to_queryable: Duration,
}

fn run_stats(name: &'static str, n: usize, elapsed: Duration) -> IngestRun {
    IngestRun {
        name,
        records_per_sec: n as f64 / elapsed.as_secs_f64(),
        us_per_record: elapsed.as_secs_f64() * 1e6 / n as f64,
        time_to_queryable: elapsed,
    }
}

/// The paper's §5.2 query spectrum, for cross-path answer verification.
fn queries(data: &TpcdData) -> Vec<Mds> {
    let mut out = vec![Mds::all(&data.schema)];
    for (sel, seed) in [(0.01, 11), (0.05, 12), (0.25, 13)] {
        let mut gen = RangeQueryGen::new(sel, ValuePick::Scattered, seed);
        for _ in 0..15 {
            out.push(gen.generate(&data.schema));
        }
    }
    out
}

fn assert_trees_agree(a: &DcTree, b: &DcTree, data: &TpcdData, who: &str) {
    assert_eq!(a.len(), b.len(), "{who}: len mismatch");
    assert_eq!(
        a.total_summary(),
        b.total_summary(),
        "{who}: total mismatch"
    );
    for (qi, q) in queries(data).iter().enumerate() {
        assert_eq!(
            a.range_summary(q).unwrap(),
            b.range_summary(q).unwrap(),
            "{who}: answer mismatch on query {qi}"
        );
    }
}

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);
    let batch_size: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4096);
    if records == 0 || batch_size == 0 {
        eprintln!("usage: ingest_bench [records > 0] [batch_size > 0]");
        std::process::exit(2);
    }
    let min_speedup: f64 = std::env::var("INGEST_BENCH_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);

    println!("generating TPC-D cube: {records} lineitems…");
    let data = generate(&TpcdConfig::scaled(records, 42));
    let config = DcTreeConfig::default();

    // Path 1: record-at-a-time — the paper's dynamic insert, one
    // choose-subtree descent per record.
    let mut one_by_one = DcTree::new(data.schema.clone(), config);
    let t0 = Instant::now();
    for r in &data.records {
        one_by_one.insert(r.clone()).expect("insert");
    }
    let single = run_stats("record_at_a_time", records, t0.elapsed());

    // Path 2: batched inserts — hierarchy-sorted batches amortize the
    // descent and defer splits across each run of identical dims.
    let mut batched_tree = DcTree::new(data.schema.clone(), config);
    let t0 = Instant::now();
    for chunk in data.records.chunks(batch_size) {
        batched_tree.insert_batch(chunk.to_vec()).expect("batch");
    }
    let batched = run_stats("batched", records, t0.elapsed());

    // Path 3: bottom-up bulk load — sort once, pack leaves to the fill
    // factor, build directory levels upward with exact aggregates.
    let mut bulk_tree = DcTree::new(data.schema.clone(), config);
    let t0 = Instant::now();
    bulk_tree.bulk_load(data.records.clone()).expect("bulk");
    let bulk = run_stats("bulk_load", records, t0.elapsed());

    // All three must be query-identical, and the bulk-built tree must
    // satisfy every structural invariant.
    bulk_tree.check_invariants().expect("bulk invariants");
    batched_tree.check_invariants().expect("batch invariants");
    assert_trees_agree(&batched_tree, &one_by_one, &data, "batched");
    assert_trees_agree(&bulk_tree, &one_by_one, &data, "bulk");

    // Path 4: the engine's INSERT_BATCH writer path end to end — raw-path
    // interning, shard routing, one command per shard per batch — timed to
    // queryable (flush barrier included).
    let engine = ShardedDcTree::new(
        data.schema.clone(),
        EngineConfig {
            num_shards: 4,
            policy: PartitionPolicy::Hash,
            ..Default::default()
        },
    )
    .expect("engine");
    let t0 = Instant::now();
    for chunk in data.records.chunks(batch_size) {
        let batch: Vec<_> = chunk
            .iter()
            .map(|r| (data.paths_for(r), r.measure))
            .collect();
        engine.insert_batch_raw(&batch).expect("engine batch");
    }
    engine.flush();
    let engine_batched = run_stats("engine_batched", records, t0.elapsed());
    assert_eq!(engine.len(), records as u64, "engine lost records");
    let all = Mds::all(&data.schema);
    assert_eq!(
        engine.range_summary(&all).unwrap(),
        one_by_one.range_summary(&all).unwrap(),
        "engine total mismatch"
    );
    engine.shutdown();

    let runs = [&single, &batched, &bulk, &engine_batched];
    println!(
        "\n{:>18} {:>14} {:>12} {:>18}",
        "path", "records/s", "µs/record", "time-to-queryable"
    );
    for r in runs {
        println!(
            "{:>18} {:>14.0} {:>12.3} {:>18?}",
            r.name, r.records_per_sec, r.us_per_record, r.time_to_queryable
        );
    }
    let bulk_speedup = bulk.records_per_sec / single.records_per_sec;
    let batch_speedup = batched.records_per_sec / single.records_per_sec;
    println!(
        "\nbulk load: {bulk_speedup:.2}x record-at-a-time   \
         batched: {batch_speedup:.2}x   (gate: bulk ≥ {min_speedup:.0}x)"
    );

    // JSON report (gated keys are the per-record latencies: lower is
    // better, and they are robust to the CI preset being smaller than the
    // committed baseline's).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"records\": {records},\n"));
    json.push_str(&format!("  \"batch_size\": {batch_size},\n"));
    for r in runs {
        json.push_str(&format!(
            "  \"{}_records_per_sec\": {:.1},\n",
            r.name, r.records_per_sec
        ));
    }
    json.push_str(&format!(
        "  \"record_at_a_time_us_per_record\": {:.4},\n",
        single.us_per_record
    ));
    json.push_str(&format!(
        "  \"batched_us_per_record\": {:.4},\n",
        batched.us_per_record
    ));
    json.push_str(&format!(
        "  \"bulk_us_per_record\": {:.4},\n",
        bulk.us_per_record
    ));
    json.push_str(&format!(
        "  \"engine_batched_us_per_record\": {:.4},\n",
        engine_batched.us_per_record
    ));
    json.push_str(&format!(
        "  \"bulk_time_to_queryable_ms\": {:.2},\n",
        bulk.time_to_queryable.as_secs_f64() * 1e3
    ));
    json.push_str(&format!(
        "  \"bulk_speedup_vs_record_at_a_time\": {bulk_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"batched_speedup_vs_record_at_a_time\": {batch_speedup:.3}\n"
    ));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/ingest_bench.json";
    std::fs::write(path, &json).expect("write report");
    println!("report written to {path}");

    if bulk_speedup < min_speedup {
        eprintln!(
            "FAIL: bulk load is only {bulk_speedup:.2}x record-at-a-time \
             (gate: ≥ {min_speedup:.0}x; set INGEST_BENCH_MIN_SPEEDUP to tune)"
        );
        std::process::exit(1);
    }
}
