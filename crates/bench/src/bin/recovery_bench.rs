//! Benchmarks WAL recovery for the sharded serving engine: how long a cold
//! reopen takes, and how checkpoint cadence trades ingest-side work for
//! replay at recovery time. Ingests the cube into a WAL-backed
//! [`ShardedDcTree`], shuts it down cleanly, and times `ShardedDcTree::new`
//! over the surviving directory — once per checkpoint cadence:
//!
//! * `checkpoint_every = 0` — no checkpoints; recovery replays every entry;
//! * `records / 20` — aggressive; recovery is checkpoint load + a short tail;
//! * `records / 5` — relaxed; the middle of the trade-off.
//!
//! Emits a JSON report to `results/recovery_bench.json`; the `recovery_ms`
//! values are watched by the bench-regression gate (`bench_gate`).
//!
//! ```sh
//! cargo run --release -p dc-bench --bin recovery_bench [records]
//! ```

use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Instant;

use dc_serve::{EngineConfig, ShardedDcTree, SyncPolicy, WalOptions};
use dc_tpcd::{generate, TpcdConfig, TpcdData};

const SHARDS: usize = 2;

struct Run {
    checkpoint_every: u64,
    ingest_per_sec: f64,
    checkpoints: u64,
    wal_rotations: u64,
    recovery_ms: f64,
    replayed_entries: u64,
    checkpoint_lsn: u64,
}

fn config(dir: &PathBuf, checkpoint_every: u64) -> EngineConfig {
    EngineConfig {
        num_shards: SHARDS,
        wal: Some(WalOptions {
            // Group commit keeps ingest from being fsync-bound, so the bench
            // measures recovery work rather than the host's fsync latency.
            sync: SyncPolicy::GroupCommitMs(2),
            segment_bytes: 256 << 10,
            checkpoint_every,
            ..WalOptions::new(dir)
        }),
        ..EngineConfig::default()
    }
}

fn bench(data: &TpcdData, checkpoint_every: u64) -> Run {
    let dir = std::env::temp_dir().join(format!(
        "dc-recovery-bench-{}-{checkpoint_every}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let engine = ShardedDcTree::new(data.schema.clone(), config(&dir, checkpoint_every))
        .expect("open engine");
    let t0 = Instant::now();
    for r in &data.records {
        engine
            .insert_raw(&data.paths_for(r), r.measure)
            .expect("insert");
    }
    engine.flush();
    let ingest = t0.elapsed();
    let d = &engine.metrics().durability;
    let checkpoints = d.checkpoints.load(Relaxed);
    let wal_rotations = d.wal_rotations.load(Relaxed);
    engine.shutdown();
    drop(engine);

    let t0 = Instant::now();
    let recovered = ShardedDcTree::new(data.schema.clone(), config(&dir, checkpoint_every))
        .expect("recover engine");
    let recovery = t0.elapsed();
    assert_eq!(
        recovered.len(),
        data.records.len() as u64,
        "recovery lost records"
    );
    let d = &recovered.metrics().durability;
    let run = Run {
        checkpoint_every,
        ingest_per_sec: data.records.len() as f64 / ingest.as_secs_f64(),
        checkpoints,
        wal_rotations,
        recovery_ms: recovery.as_secs_f64() * 1e3,
        replayed_entries: d.recovery_replayed_entries.load(Relaxed),
        checkpoint_lsn: d.recovery_checkpoint_lsn.load(Relaxed),
    };
    recovered.shutdown();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    run
}

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    if records < 100 {
        eprintln!("usage: recovery_bench [records >= 100]");
        std::process::exit(2);
    }

    println!("generating TPC-D cube: {records} lineitems…");
    let data = generate(&TpcdConfig::scaled(records, 17));

    let cadences = [0, records as u64 / 20, records as u64 / 5];
    let runs: Vec<Run> = cadences.iter().map(|&c| bench(&data, c)).collect();

    println!(
        "\n{:>16} {:>14} {:>12} {:>12} {:>14} {:>14}",
        "checkpoint_every", "ingest rec/s", "checkpoints", "rotations", "recovery ms", "replayed"
    );
    for r in &runs {
        println!(
            "{:>16} {:>14.0} {:>12} {:>12} {:>14.2} {:>14}",
            r.checkpoint_every,
            r.ingest_per_sec,
            r.checkpoints,
            r.wal_rotations,
            r.recovery_ms,
            r.replayed_entries
        );
    }

    let full_replay = &runs[0];
    let aggressive = &runs[1];
    let replay_cut =
        full_replay.replayed_entries as f64 / aggressive.replayed_entries.max(1) as f64;
    println!(
        "\ncheckpointing at records/20 replays {replay_cut:.0}x fewer entries than \
         full-log recovery"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"records\": {records},\n"));
    json.push_str(&format!("  \"shards\": {SHARDS},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"checkpoint_every\": {}, \"ingest_records_per_sec\": {:.1}, \
             \"checkpoints\": {}, \"wal_rotations\": {}, \"recovery_ms\": {:.2}, \
             \"replayed_entries\": {}, \"checkpoint_lsn\": {}}}{}\n",
            r.checkpoint_every,
            r.ingest_per_sec,
            r.checkpoints,
            r.wal_rotations,
            r.recovery_ms,
            r.replayed_entries,
            r.checkpoint_lsn,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"replay_reduction_at_records_over_20\": {replay_cut:.1}\n"
    ));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/recovery_bench.json";
    std::fs::write(path, &json).expect("write report");
    println!("report written to {path}");
}
