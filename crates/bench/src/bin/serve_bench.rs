//! Benchmarks the sharded serving engine on the paper's Fig. 12 query
//! workload (§5.2: 100 random range queries per selectivity over the TPC-D
//! cube), comparing aggregate query throughput at 1 / 2 / 4 shards under
//! dimension partitioning, plus ingest throughput and engine latency
//! percentiles. Emits a JSON report to `results/serve_bench.json`.
//!
//! The speedup at 4 shards does not depend on spare cores: dimension
//! partitioning (by `Customer.Region`) lets the engine prune shards whose
//! partition values a query excludes, and each visited shard descends a
//! tree a quarter the size — less logical work per query.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin serve_bench [records] [queries_per_sel]
//! ```

use std::time::{Duration, Instant};

use dc_common::DimensionId;
use dc_query::{RangeQueryGen, ValuePick};
use dc_serve::{EngineConfig, PartitionPolicy, ShardedDcTree};
use dc_tpcd::{generate, TpcdConfig, TpcdData};

const SELECTIVITIES: [f64; 3] = [0.01, 0.05, 0.25];

struct ShardRun {
    shards: usize,
    ingest_per_sec: f64,
    queries_per_sec: f64,
    avg_query: Duration,
    per_sel_qps: Vec<f64>,
    fanout: f64,
    reads_per_query: f64,
    p50_us: f64,
    p99_us: f64,
}

fn bench_shards(data: &TpcdData, shards: usize, queries_per_sel: usize) -> ShardRun {
    let dim = DimensionId(0); // Customer: Region is the top functional level
    let level = data.schema.dim(dim).top_level() - 1;
    let engine = ShardedDcTree::new(
        data.schema.clone(),
        EngineConfig {
            num_shards: shards,
            policy: PartitionPolicy::ByDimension { dim, level },
            ..Default::default()
        },
    )
    .expect("engine");

    let t0 = Instant::now();
    for r in &data.records {
        engine
            .insert_raw(&data.paths_for(r), r.measure)
            .expect("insert");
    }
    engine.flush();
    let ingest = t0.elapsed();
    assert_eq!(
        engine.len(),
        data.records.len() as u64,
        "ingest lost records"
    );

    // The Fig. 12 workload: `queries_per_sel` random §5.2 queries at each of
    // the paper's three selectivities (same ValuePick as the fig12 harness),
    // all answered through the engine.
    for s in 0..shards {
        engine.shard_snapshot(s).reset_io();
    }
    let mut ran = 0usize;
    let mut per_sel_qps = Vec::new();
    let t0 = Instant::now();
    for (i, sel) in SELECTIVITIES.iter().enumerate() {
        let mut gen = RangeQueryGen::new(*sel, ValuePick::ContiguousRun, 7 + i as u64);
        let sel_t0 = Instant::now();
        for _ in 0..queries_per_sel {
            let q = gen.generate(&data.schema);
            let s = engine.range_summary(&q).expect("query");
            std::hint::black_box(s);
            ran += 1;
        }
        per_sel_qps.push(queries_per_sel as f64 / sel_t0.elapsed().as_secs_f64());
    }
    let query_time = t0.elapsed();
    let reads_per_query = (0..shards)
        .map(|s| engine.shard_snapshot(s).io_stats().reads)
        .sum::<u64>() as f64
        / ran as f64;

    let m = engine.metrics();
    let visits = m.shard_visits.load(std::sync::atomic::Ordering::Relaxed);
    let fanout = visits as f64 / ran as f64;
    let run = ShardRun {
        shards,
        ingest_per_sec: data.records.len() as f64 / ingest.as_secs_f64(),
        queries_per_sec: ran as f64 / query_time.as_secs_f64(),
        avg_query: query_time / ran as u32,
        per_sel_qps,
        fanout,
        reads_per_query,
        p50_us: m.query_latency.quantile(0.50).as_secs_f64() * 1e6,
        p99_us: m.query_latency.quantile(0.99).as_secs_f64() * 1e6,
    };
    engine.shutdown();
    run
}

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let queries_per_sel: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    if records == 0 || queries_per_sel == 0 {
        eprintln!("usage: serve_bench [records > 0] [queries_per_sel > 0]");
        std::process::exit(2);
    }

    println!("generating TPC-D cube: {records} lineitems…");
    let data = generate(&TpcdConfig::scaled(records, 42));

    println!(
        "\nFig. 12 workload through the serving engine ({} queries: {} per selectivity {:?})",
        queries_per_sel * SELECTIVITIES.len(),
        queries_per_sel,
        SELECTIVITIES,
    );
    println!(
        "{:>7} {:>14} {:>14} {:>12} {:>10} {:>10}",
        "shards", "ingest rec/s", "queries/s", "avg query", "p50 µs", "p99 µs"
    );
    let runs: Vec<ShardRun> = [1usize, 2, 4]
        .iter()
        .map(|&s| bench_shards(&data, s, queries_per_sel))
        .collect();
    for r in &runs {
        println!(
            "{:>7} {:>14.0} {:>14.1} {:>12?} {:>10.1} {:>10.1}   per-sel q/s: {:?}",
            r.shards,
            r.ingest_per_sec,
            r.queries_per_sec,
            r.avg_query,
            r.p50_us,
            r.p99_us,
            r.per_sel_qps.iter().map(|q| q.round()).collect::<Vec<_>>(),
        );
        println!(
            "{:>7} avg shards visited per query: {:.2}   logical page reads/query: {:.1}",
            "", r.fanout, r.reads_per_query
        );
    }

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // Report the executor configuration the runs actually used (the engine
    // default): whether the work-stealing query pool was on, and how many
    // workers it resolves to. `cores > 1` is *not* assumed to imply the
    // pool ran — the config decides.
    let cfg = EngineConfig::default();
    let pool_workers = if cfg.parallel_queries {
        cfg.pool_workers.unwrap_or(cores)
    } else {
        0
    };
    let base = runs.iter().find(|r| r.shards == 1).unwrap();
    let four = runs.iter().find(|r| r.shards == 4).unwrap();
    let query_speedup = four.queries_per_sec / base.queries_per_sec;
    let ingest_speedup = four.ingest_per_sec / base.ingest_per_sec;
    let reads_ratio = base.reads_per_query / four.reads_per_query;
    println!(
        "\n4 shards vs 1  —  query throughput: {query_speedup:.2}x   \
              ingest throughput: {ingest_speedup:.2}x   \
              logical reads/query: {reads_ratio:.2}x fewer"
    );
    println!(
        "({cores} core(s); query pool {})",
        if pool_workers > 0 {
            format!("on, {pool_workers} worker(s)")
        } else {
            "off — query speedup needs spare cores".to_string()
        }
    );

    // JSON report.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"records\": {},\n", records));
    json.push_str(&format!(
        "  \"queries_total\": {},\n",
        queries_per_sel * SELECTIVITIES.len()
    ));
    json.push_str("  \"selectivities\": [0.01, 0.05, 0.25],\n");
    json.push_str("  \"partitioning\": \"ByDimension(Customer.Region)\",\n");
    json.push_str(&format!("  \"cores\": {},\n", cores));
    json.push_str(&format!(
        "  \"parallel_queries\": {},\n",
        cfg.parallel_queries
    ));
    json.push_str(&format!("  \"pool_workers\": {},\n", pool_workers));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"ingest_records_per_sec\": {:.1}, \
             \"queries_per_sec\": {:.2}, \"avg_query_us\": {:.1}, \
             \"avg_shards_visited\": {:.2}, \"page_reads_per_query\": {:.1}, \
             \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}}}{}\n",
            r.shards,
            r.ingest_per_sec,
            r.queries_per_sec,
            r.avg_query.as_secs_f64() * 1e6,
            r.fanout,
            r.reads_per_query,
            r.p50_us,
            r.p99_us,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"query_speedup_4_shards_vs_1\": {query_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"ingest_speedup_4_shards_vs_1\": {ingest_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"read_reduction_4_shards_vs_1\": {reads_ratio:.3}\n"
    ));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/serve_bench.json";
    std::fs::write(path, &json).expect("write report");
    println!("report written to {path}");

    if query_speedup < 1.5 && cores == 1 {
        eprintln!(
            "NOTE: single-core host — the >1.5x query-throughput target needs the \
             work-stealing query pool, which only pays off with spare cores. \
             Shard pruning alone gives ~{reads_ratio:.2}x in logical reads here \
             because the DC-tree's own MDS pruning already clusters the partition \
             dimension well (ingest still gains {ingest_speedup:.2}x from smaller \
             per-shard trees, the Fig. 11 size effect)."
        );
    }
}
