//! CI bench-regression gate. Compares freshly produced bench reports
//! against committed baselines and exits non-zero when any watched
//! mean-latency value regressed past the budget.
//!
//! ```sh
//! bench_gate <baseline-dir> <current-dir>
//! ```
//!
//! The watched (file, key) pairs live in [`dc_bench::gate::GATED_REPORTS`].
//! The budget defaults to 25% and can be widened for noisy hosts via
//! `BENCH_GATE_MAX_REGRESSION` (a fraction: `0.25` = 25%). A missing
//! baseline file is skipped with a note — that is how a brand-new bench
//! lands before its first baseline is committed — but a missing *current*
//! report fails: the bench did not run.

use std::path::Path;

use dc_bench::gate::{compare_report, GATED_REPORTS};

fn main() {
    let baseline_dir = std::env::args().nth(1).unwrap_or_else(usage);
    let current_dir = std::env::args().nth(2).unwrap_or_else(usage);
    let max_regression: f64 = std::env::var("BENCH_GATE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    println!(
        "bench gate: current `{current_dir}` vs baseline `{baseline_dir}`, \
         budget +{:.0}%\n",
        max_regression * 100.0
    );

    let mut failed = false;
    let mut compared = 0usize;
    for spec in GATED_REPORTS {
        let base_path = Path::new(&baseline_dir).join(spec.file);
        let cur_path = Path::new(&current_dir).join(spec.file);
        let Ok(baseline) = std::fs::read_to_string(&base_path) else {
            println!("SKIP {}: no baseline at {}", spec.file, base_path.display());
            continue;
        };
        let current = match std::fs::read_to_string(&cur_path) {
            Ok(c) => c,
            Err(e) => {
                println!("FAIL {}: current report missing ({e})", spec.file);
                failed = true;
                continue;
            }
        };
        match compare_report(&baseline, &current, spec.keys, max_regression) {
            Err(msg) => {
                println!("FAIL {}: {msg}", spec.file);
                failed = true;
            }
            Ok(regressions) if regressions.is_empty() => {
                println!("OK   {}: {:?} within budget", spec.file, spec.keys);
                compared += 1;
            }
            Ok(regressions) => {
                for r in &regressions {
                    println!(
                        "FAIL {}: {}[{}] = {:.2} vs baseline {:.2} ({:+.1}%)",
                        spec.file,
                        r.key,
                        r.index,
                        r.current,
                        r.baseline,
                        (r.ratio() - 1.0) * 100.0
                    );
                }
                failed = true;
            }
        }
    }

    if failed {
        println!("\nbench gate: FAILED");
        std::process::exit(1);
    }
    println!("\nbench gate: passed ({compared} report(s) compared)");
}

fn usage() -> String {
    eprintln!("usage: bench_gate <baseline-dir> <current-dir>");
    std::process::exit(2);
}
