//! **Figure 13** — node sizes per level.
//!
//! The paper plots the average number of entries for the two highest
//! DC-tree levels below the root as the cube grows: the highest level
//! stabilizes around 15 entries, while the second-highest saturates at
//! ≈2.5× the capacity of a regular directory node — the supernode effect
//! the split algorithm produces once directory MDSs become "too special to
//! be split further".
//!
//! ```sh
//! cargo run --release -p dc-bench --bin fig13 [max_records]
//! ```

use dc_bench::harness::build_engines;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let mut sizes = Vec::new();
    let mut n = 12_500;
    while n <= max_n {
        sizes.push(n);
        n *= 2;
    }
    if sizes.last().copied() != Some(max_n) {
        sizes.push(max_n);
    }

    println!("Figure 13: average node size (entries) per tree level");
    println!(
        "{:>10} {:>7} {:>12} {:>12} {:>14} {:>12}",
        "records", "height", "root", "level 1", "level 2", "supernodes"
    );
    for &n in &sizes {
        let e = build_engines(n, 42);
        let stats = e.dc.stats();
        let lvl = |d: usize| {
            stats
                .levels
                .get(d)
                .map(|l| format!("{:.1} ({:.1} blk)", l.avg_entries, l.avg_blocks))
                .unwrap_or_else(|| "—".into())
        };
        println!(
            "{n:>10} {:>7} {:>12} {:>12} {:>14} {:>12}",
            stats.height,
            lvl(0),
            lvl(1),
            lvl(2),
            stats.supernodes
        );
    }
    println!(
        "\nPaper: the level directly below the root stabilizes near 15 \
         entries; the next level saturates at ≈2.5× directory capacity \
         because nodes whose MDSs are \"already too special\" stop splitting \
         and grow as supernodes. Look for the same saturation here: upper \
         levels exceed one block per node while data nodes stay at one."
    );
}
