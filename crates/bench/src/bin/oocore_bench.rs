//! Out-of-core serving bench (`dc-oocore`): what does it cost to serve a
//! DC-tree cube from disk through the concurrent buffer pool, and what
//! does the compressed node codec buy? Three sections:
//!
//! * **density** — the same cube written as compressed and plain pages:
//!   file bytes, records per GB, and the codec's compression ratio.
//! * **serving** — the disk-backed engine with a frame budget ≥10× below
//!   the dataset's page count vs. the RAM-resident engine, same query
//!   stream (cache off on both, so every query descends): mean latency
//!   and queries/sec. Disk is expected to lose — the point is to measure
//!   the gap the pool holds it to while RAM holds 10× less.
//! * **scan resistance** — a hot 1% query loop, alone and interleaved
//!   with full-cube scans: the segmented LRU must keep the hot set's hit
//!   rate from collapsing when scans sweep the pool.
//!
//! Emits `results/oocore_bench.json` (gated key: `mean_query_us`, two
//! occurrences — disk then resident).
//!
//! ```sh
//! cargo run --release -p dc-bench --bin oocore_bench [records] [queries]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use dc_common::{AggregateOp, DimensionId};
use dc_mds::Mds;
use dc_oocore::{OocDcTree, OocOptions};
use dc_query::{RangeQueryGen, ValuePick};
use dc_serve::{DiskOptions, EngineConfig, PartitionPolicy, ShardedDcTree, StorageMode};
use dc_storage::BlockConfig;
use dc_tpcd::{generate, TpcdConfig, TpcdData};
use dc_tree::DcTreeConfig;

const BLOCK: usize = 1024;
const SHARDS: usize = 2;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dc-oocbench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir bench dir");
    dir
}

/// Extracts the first integer after `"key":` in hand-rolled STATS JSON.
fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("{key} missing in stats"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn pool_touches(engine: &ShardedDcTree) -> (u64, u64) {
    let s = engine.stats_json();
    (json_u64(&s, "pool_hits"), json_u64(&s, "pool_misses"))
}

/// Mixed workload: scalar summaries over three selectivities plus a
/// level-1 group-by every fourth query.
fn queries(data: &TpcdData, n: usize) -> Vec<(Mds, Option<DimensionId>)> {
    let mut gens = [
        RangeQueryGen::new(0.01, ValuePick::Scattered, 3),
        RangeQueryGen::new(0.05, ValuePick::Scattered, 4),
        RangeQueryGen::new(0.25, ValuePick::Scattered, 5),
    ];
    (0..n)
        .map(|i| {
            let q = gens[i % gens.len()].generate(&data.schema);
            let group = (i % 4 == 0).then(|| DimensionId((i % data.schema.num_dims()) as u16));
            (q, group)
        })
        .collect()
}

fn run_stream(engine: &ShardedDcTree, stream: &[(Mds, Option<DimensionId>)]) -> f64 {
    let t0 = Instant::now();
    for (q, group) in stream {
        match group {
            None => {
                std::hint::black_box(engine.range_summary(q).expect("query"));
            }
            Some(dim) => {
                std::hint::black_box(engine.group_by(*dim, 1, q).expect("group-by"));
            }
        }
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40_000);
    let num_queries: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    if records == 0 || num_queries == 0 {
        eprintln!("usage: oocore_bench [records > 0] [queries > 0]");
        std::process::exit(2);
    }

    println!("generating TPC-D cube: {records} lineitems…");
    let data = generate(&TpcdConfig::scaled(records, 42));

    // ------------------------------------------------------------------
    // Density: compressed vs. plain pages, one standalone shard each.
    // ------------------------------------------------------------------
    let dir = temp_dir("density");
    let mut density = Vec::new();
    for (name, compress) in [("compressed", true), ("plain", false)] {
        let tree = OocDcTree::create(
            dir.join(format!("{name}.dct")),
            data.schema.clone(),
            DcTreeConfig::default(),
            OocOptions {
                block: BlockConfig::new(BLOCK),
                frames: 256,
                compress,
            },
        )
        .expect("create shard");
        let t0 = Instant::now();
        for r in &data.records {
            tree.insert(r.clone()).expect("insert");
        }
        tree.flush().expect("flush");
        let bytes = tree.file_bytes();
        let records_per_gb = records as f64 * 1e9 / bytes as f64;
        println!(
            "{name:>12}: {bytes:>12} bytes, {records_per_gb:>12.0} records/GB \
             (ingest {:.2}s)",
            t0.elapsed().as_secs_f64()
        );
        density.push((name, bytes, records_per_gb));
    }
    let ratio = density[1].1 as f64 / density[0].1 as f64;
    println!("{:>12}: {ratio:.2}x", "codec ratio");

    // ------------------------------------------------------------------
    // Serving: disk at ≥10× the frame budget vs. RAM-resident.
    // ------------------------------------------------------------------
    let total_pages = density[0].1 / BLOCK as u64;
    let frames = ((total_pages / (10 * SHARDS as u64)) as usize).max(8);
    let over_budget = total_pages as f64 / (frames * SHARDS) as f64;
    println!(
        "\nserving: {total_pages} pages over {SHARDS}×{frames} frames \
         ({over_budget:.1}x the budget), {num_queries} queries, cache off"
    );

    let build = |storage: StorageMode| -> ShardedDcTree {
        let engine = ShardedDcTree::new(
            data.schema.clone(),
            EngineConfig {
                num_shards: SHARDS,
                policy: PartitionPolicy::Hash,
                cache: None,
                storage,
                ..Default::default()
            },
        )
        .expect("engine");
        for r in &data.records {
            engine
                .insert_raw(&data.paths_for(r), r.measure)
                .expect("insert");
        }
        engine.flush();
        engine
    };
    let disk = build(StorageMode::Disk(DiskOptions {
        dir: temp_dir("serve"),
        ooc: OocOptions {
            block: BlockConfig::new(BLOCK),
            frames,
            compress: true,
        },
    }));
    let resident = build(StorageMode::Resident);

    let stream = queries(&data, num_queries);
    let mut rows = Vec::new();
    for (mode, engine) in [("disk", &disk), ("resident", &resident)] {
        // Warmup: fault the spine in, size per-thread scratch.
        run_stream(engine, &stream[..stream.len().min(8)]);
        let secs = run_stream(engine, &stream);
        let mean_query_us = secs * 1e6 / stream.len() as f64;
        let qps = stream.len() as f64 / secs;
        println!("{mode:>12}: {mean_query_us:>10.1} µs/query, {qps:>10.0} q/s");
        rows.push((mode, mean_query_us, qps));
    }
    let slowdown = rows[0].1 / rows[1].1;
    println!("{:>12}: {slowdown:.1}x resident latency", "disk pays");

    // ------------------------------------------------------------------
    // Scan resistance: a hot query alone vs. interleaved with full scans.
    // ------------------------------------------------------------------
    let hot = RangeQueryGen::new(0.001, ValuePick::ContiguousRun, 11).generate(&data.schema);
    let all = Mds::all(&data.schema);
    let hot_rate = |with_scans: bool| -> f64 {
        // Prime the hot set, then measure its touches per iteration.
        for _ in 0..3 {
            std::hint::black_box(disk.range_query(&hot, AggregateOp::Sum).expect("prime"));
        }
        let (mut hits, mut misses) = (0u64, 0u64);
        for i in 0..40 {
            if with_scans && i % 5 == 0 {
                std::hint::black_box(disk.range_summary(&all).expect("scan"));
            }
            let (h0, m0) = pool_touches(&disk);
            std::hint::black_box(disk.range_query(&hot, AggregateOp::Sum).expect("hot"));
            let (h1, m1) = pool_touches(&disk);
            hits += h1 - h0;
            misses += m1 - m0;
        }
        hits as f64 / (hits + misses).max(1) as f64
    };
    let hot_alone = hot_rate(false);
    let hot_scanned = hot_rate(true);
    println!(
        "\nscan resistance: hot hit rate {:.3} alone, {:.3} under scans",
        hot_alone, hot_scanned
    );

    let stats = disk.stats_json();
    let (hits, misses) = (
        json_u64(&stats, "pool_hits"),
        json_u64(&stats, "pool_misses"),
    );

    // JSON report.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"records\": {records},\n"));
    json.push_str(&format!("  \"queries\": {num_queries},\n"));
    json.push_str("  \"density\": [\n");
    for (i, (name, bytes, rpg)) in density.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"pages\": \"{name}\", \"file_bytes\": {bytes}, \
             \"records_per_gb\": {rpg:.0}}}{}\n",
            if i + 1 < density.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"codec_ratio\": {ratio:.3},\n"));
    json.push_str(&format!("  \"frames_per_shard\": {frames},\n"));
    json.push_str(&format!("  \"dataset_over_budget_x\": {over_budget:.1},\n"));
    json.push_str("  \"serving\": [\n");
    for (i, (mode, us, qps)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{mode}\", \"mean_query_us\": {us:.1}, \"qps\": {qps:.0}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"disk_slowdown_x\": {slowdown:.2},\n"));
    json.push_str(&format!(
        "  \"scan_resistance\": {{\"hot_hit_rate\": {hot_alone:.3}, \
         \"hot_hit_rate_under_scans\": {hot_scanned:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"pool\": {{\"hits\": {hits}, \"misses\": {misses}}}\n"
    ));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/oocore_bench.json";
    std::fs::write(path, &json).expect("write report");
    println!("report written to {path}");

    // Sanity: the bench must actually have run out-of-core.
    if over_budget < 10.0 {
        eprintln!(
            "FAIL: dataset only {over_budget:.1}x the frame budget — raise [records] \
             so the serving section measures disk, not RAM"
        );
        std::process::exit(1);
    }
    if ratio <= 1.0 {
        eprintln!("FAIL: compressed pages are no smaller than plain pages");
        std::process::exit(1);
    }
}
