//! Benchmarks segment-shipping replication for the sharded serving engine:
//! how fast a fresh follower catches up on an existing log, how stale a
//! tailing follower's reads are while the primary ingests, and how long
//! promotion to a writable primary takes.
//!
//! Three phases over one WAL-backed primary:
//!
//! * **catch-up** — ingest the cube, then bootstrap a follower from
//!   scratch and drain the whole log (`catchup_ms`, entries/s);
//! * **freshness** — with the follower tailing, run rounds of inserts and
//!   measure, per round, how long after the primary's `FLUSH` the
//!   follower's applied-and-visible frontier reaches the flushed LSN
//!   (`mean_lag_ms` / `p95_lag_ms`);
//! * **promotion** — stop tailing and promote the follower into a
//!   writable primary over its mirrored directory (`promotion_ms`).
//!
//! Emits a JSON report to `results/replication_bench.json`; the
//! `catchup_ms`, `mean_lag_ms`, and `promotion_ms` values are watched by
//! the bench-regression gate (`bench_gate`).
//!
//! ```sh
//! cargo run --release -p dc-bench --bin replication_bench [records]
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dc_replica::{EngineSource, Follower, FollowerConfig};
use dc_serve::{EngineConfig, ShardedDcTree, SyncPolicy, WalOptions};
use dc_tpcd::{generate, TpcdConfig, TpcdData};

const SHARDS: usize = 2;
const ROUNDS: usize = 50;
const BATCH: usize = 20;

fn wal_config(dir: &PathBuf) -> EngineConfig {
    EngineConfig {
        num_shards: SHARDS,
        wal: Some(WalOptions {
            sync: SyncPolicy::GroupCommitMs(2),
            segment_bytes: 256 << 10,
            checkpoint_every: 0,
            ..WalOptions::new(dir)
        }),
        ..EngineConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dc-repl-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    if records < 100 {
        eprintln!("usage: replication_bench [records >= 100]");
        std::process::exit(2);
    }

    println!("generating TPC-D cube: {records} lineitems…");
    let data: TpcdData = generate(&TpcdConfig::scaled(records, 17));

    let primary_dir = temp_dir("primary");
    let follower_dir = temp_dir("follower");

    let primary = Arc::new(
        ShardedDcTree::new(data.schema.clone(), wal_config(&primary_dir)).expect("open primary"),
    );

    // Phase 1: ingest, then cold catch-up of the full log.
    let t0 = Instant::now();
    for r in &data.records {
        primary
            .insert_raw(&data.paths_for(r), r.measure)
            .expect("insert");
    }
    primary.flush();
    let ingest = t0.elapsed();
    let log_lsn = primary.applied_lsn();

    let t0 = Instant::now();
    let follower = Arc::new(
        Follower::bootstrap(
            EngineSource(Arc::clone(&primary)),
            data.schema.clone(),
            FollowerConfig {
                poll_interval: Duration::from_millis(1),
                ..FollowerConfig::new(&follower_dir)
            },
        )
        .expect("bootstrap follower"),
    );
    let caught = follower.catch_up().expect("catch up");
    let catchup = t0.elapsed();
    assert_eq!(caught, log_lsn, "catch-up drained the whole log");
    assert_eq!(follower.engine().len(), primary.len(), "record counts");
    let catchup_ms = catchup.as_secs_f64() * 1e3;
    let catchup_per_sec = log_lsn as f64 / catchup.as_secs_f64();

    // Phase 2: freshness lag while tailing. Each round appends a batch,
    // flushes, and times the follower's frontier reaching the flushed LSN.
    follower.start_tailing();
    let mut lags_ms: Vec<f64> = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        for i in 0..BATCH {
            let r = &data.records[(round * BATCH + i) % data.records.len()];
            primary
                .insert_raw(&data.paths_for(r), r.measure)
                .expect("insert");
        }
        primary.flush();
        let lsn = primary.applied_lsn();
        let t0 = Instant::now();
        follower
            .engine()
            .wait_lsn(lsn, Duration::from_secs(30))
            .expect("follower frontier");
        lags_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mean_lag_ms = lags_ms.iter().sum::<f64>() / lags_ms.len() as f64;
    let mut sorted = lags_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p95_lag_ms = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];

    // Phase 3: promotion.
    follower.stop_tailing();
    let final_len = primary.len();
    primary.shutdown();
    let t0 = Instant::now();
    let promoted = Arc::try_unwrap(follower)
        .ok()
        .expect("sole follower handle")
        .promote()
        .expect("promote");
    let promotion_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(promoted.len(), final_len, "promotion lost records");
    promoted
        .insert_raw(&data.paths_for(&data.records[0]), data.records[0].measure)
        .expect("promoted engine is writable");
    promoted.flush();
    promoted.shutdown();

    println!(
        "\n{:>12} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "ingest rec/s", "catchup ms", "catchup e/s", "mean lag ms", "p95 lag ms", "promote ms"
    );
    println!(
        "{:>12.0} {:>14.2} {:>14.0} {:>14.3} {:>12.3} {:>12.2}",
        records as f64 / ingest.as_secs_f64(),
        catchup_ms,
        catchup_per_sec,
        mean_lag_ms,
        p95_lag_ms,
        promotion_ms
    );

    let json = format!(
        "{{\n  \"records\": {records},\n  \"shards\": {SHARDS},\n  \
         \"log_entries\": {log_lsn},\n  \
         \"catchup_ms\": {catchup_ms:.2},\n  \
         \"catchup_entries_per_sec\": {catchup_per_sec:.1},\n  \
         \"rounds\": {ROUNDS},\n  \"batch\": {BATCH},\n  \
         \"mean_lag_ms\": {mean_lag_ms:.3},\n  \
         \"p95_lag_ms\": {p95_lag_ms:.3},\n  \
         \"promotion_ms\": {promotion_ms:.2}\n}}\n"
    );

    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/replication_bench.json";
    std::fs::write(path, &json).expect("write report");
    println!("report written to {path}");

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}
