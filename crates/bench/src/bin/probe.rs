//! Internal performance probe (not part of the figure harness).
use dc_common::DimensionId;
use dc_mds::{DimSet, Mds};
use dc_query::{RangeQueryGen, ValuePick};
use dc_tpcd::{generate, TpcdConfig};
use dc_tree::{DcTree, DcTreeConfig};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let data = generate(&TpcdConfig::scaled(n, 42));
    let mut dc = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    let t0 = Instant::now();
    for r in &data.records {
        dc.insert(r.clone()).unwrap();
    }
    println!("insert {:?}", t0.elapsed());
    for sel in [0.01, 0.05, 0.25] {
        let mut g = RangeQueryGen::new(sel, ValuePick::ContiguousRun, 7);
        for _ in 0..50 {
            let q = g.generate(&data.schema);
            let _ = dc.range_summary(&q).unwrap();
        }
        let m = dc.metrics();
        println!(
            "sel {sel}: shortcut_hits={} descents={}",
            m.shortcut_hits, m.descents
        );
    }
    // Roll-up workload: one dim constrained at a coarse level, others ALL.
    let mut rollups = Vec::new();
    for d in 0..4u16 {
        let h = data.schema.dim(DimensionId(d));
        for level in 1..=h.top_level() - 1 {
            for v in h.values_at(level) {
                let dims = (0..4u16)
                    .map(|dd| {
                        if dd == d {
                            DimSet::singleton(v)
                        } else {
                            DimSet::singleton(data.schema.dim(DimensionId(dd)).all())
                        }
                    })
                    .collect();
                rollups.push(Mds::new(dims));
            }
        }
    }
    let before = dc.metrics();
    let t0 = Instant::now();
    for q in rollups.iter().take(500) {
        let _ = dc.range_summary(q).unwrap();
    }
    let el = t0.elapsed() / 500u32.min(rollups.len() as u32);
    let m = dc.metrics();
    println!(
        "rollups: {el:?}/query shortcut_hits={} descents={}",
        m.shortcut_hits - before.shortcut_hits,
        m.descents - before.descents
    );
}
