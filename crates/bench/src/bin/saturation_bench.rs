//! Saturates the network front-ends and reports where they bend:
//!
//! * **Phase A — throughput at 256 connections.** Closed-loop `PING` and
//!   `COUNT`, against the legacy thread-per-connection text server (one
//!   request in flight per connection) and against the reactor's
//!   pipelined `DCB1` binary codec (depth 32). On `PING` — the pure
//!   front-end figure, free of engine work — the reactor must win by
//!   `SAT_MIN_SPEEDUP` (default 5×): pipelining amortises the per-request
//!   syscall + scheduling cost that dominates cheap verbs. The `COUNT`
//!   speedup is reported alongside to show what survives once both sides
//!   pay the identical parse/plan/execute path.
//! * **Phase B — open-loop latency at ≥ 1k connections.** 1088 binary
//!   connections; requests are injected on a fixed schedule regardless of
//!   completions (open loop), so queueing delay is charged to latency the
//!   way a real arrival process would charge it. Reports p50/p99/p999.
//! * **Phase C — overload.** A reactor with a deliberately tight tenant
//!   budget is driven far past it. The bench asserts the no-collapse
//!   property: shed rate > 0 (`BUSY`, not unbounded queueing) while the
//!   p99 of *admitted* requests stays bounded
//!   (`SAT_MAX_ADMITTED_P99_US`, default 500 ms). Violation exits 1.
//!
//! Emits `results/saturation_bench.json`; `bench_gate` watches the
//! latency keys (`open_loop_p99_us`, `open_loop_p999_us`,
//! `overload_admitted_p99_us`).
//!
//! ```sh
//! cargo run --release -p dc-bench --bin saturation_bench \
//!     [records] [open_loop_conns] [phase_ms]
//! ```
//!
//! The driver multiplexes every client over nonblocking sockets in one
//! scan loop — no threads per connection on the client side either — so
//! the process needs `conns × 2` file descriptors (both ends are
//! in-process); raise `ulimit -n` past ~3k for the default shape.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dc_serve::codec::{self, ResponseStep};
use dc_serve::protocol::Request;
use dc_serve::{
    serve, serve_reactor, AdmissionConfig, EngineConfig, PartitionPolicy, ReactorConfig,
    ServerConfig, ShardedDcTree,
};
use dc_tpcd::{generate, TpcdConfig};

const PIPELINE_DEPTH: usize = 32;
const OVERLOAD_CONNS: usize = 64;
const OVERLOAD_DEPTH: usize = 8;

/// One nonblocking client connection; `pending` holds the send (or
/// scheduled-send) instant of every in-flight request, FIFO — responses
/// come back in order, so the front entry is always the one a completed
/// frame answers.
struct Conn {
    stream: TcpStream,
    inbox: Vec<u8>,
    outbox: Vec<u8>,
    pending: VecDeque<Instant>,
}

impl Conn {
    fn connect(addr: SocketAddr, binary: bool) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_nonblocking(true).expect("nonblocking");
        let mut c = Conn {
            stream,
            inbox: Vec::new(),
            outbox: Vec::new(),
            pending: VecDeque::new(),
        };
        if binary {
            c.outbox.extend_from_slice(&codec::MAGIC);
        }
        c
    }

    fn pump_write(&mut self) {
        while !self.outbox.is_empty() {
            match self.stream.write(&self.outbox) {
                Ok(0) => panic!("server closed the connection mid-write"),
                Ok(n) => {
                    self.outbox.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("write: {e}"),
            }
        }
    }

    fn pump_read(&mut self, scratch: &mut [u8]) {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => panic!("server closed the connection"),
                Ok(n) => self.inbox.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("read: {e}"),
            }
        }
    }

    /// Drains complete binary response frames; returns `(status, latency)`
    /// per frame, charging each against the oldest pending send.
    fn take_binary(&mut self, now: Instant) -> Vec<(u8, Duration)> {
        let mut done = Vec::new();
        loop {
            match codec::decode_response(&self.inbox) {
                ResponseStep::Incomplete => break,
                ResponseStep::Frame {
                    consumed, status, ..
                } => {
                    self.inbox.drain(..consumed);
                    let sent = self.pending.pop_front().expect("response without request");
                    done.push((status, now.duration_since(sent)));
                }
                other => panic!("binary stream desynced: {other:?}"),
            }
        }
        done
    }

    /// Throughput-only drain: counts complete binary frames and asserts
    /// their status without materialising response strings (phase A counts
    /// millions of responses; the per-frame `String` + UTF-8 check would
    /// make the single-threaded driver the bottleneck being measured).
    fn take_binary_counts(&mut self, expect_status: u8) -> usize {
        let mut n = 0;
        let mut off = 0;
        while self.inbox.len() >= off + 5 {
            let len = u32::from_le_bytes(self.inbox[off..off + 4].try_into().unwrap()) as usize;
            if self.inbox.len() < off + 4 + len {
                break;
            }
            assert_eq!(self.inbox[off + 4], expect_status, "unexpected status");
            off += 4 + len;
            self.pending.pop_front();
            n += 1;
        }
        self.inbox.drain(..off);
        n
    }

    /// Drains complete text response lines; returns how many finished.
    fn take_lines(&mut self) -> usize {
        let mut n = 0;
        while let Some(pos) = self.inbox.iter().position(|&b| b == b'\n') {
            self.inbox.drain(..=pos);
            self.pending.pop_front();
            n += 1;
        }
        n
    }
}

fn connect_all(addr: SocketAddr, n: usize, binary: bool) -> Vec<Conn> {
    (0..n)
        .map(|i| {
            // Stay under the listener backlog: the accept side drains fast,
            // but give it a breath every so often.
            if i % 128 == 127 {
                std::thread::sleep(Duration::from_millis(5));
            }
            Conn::connect(addr, binary)
        })
        .collect()
}

/// Closed-loop fixed request over the legacy text server: one request in
/// flight per connection, which is all the newline protocol supports
/// usefully — its responses carry no sequence numbers and the server
/// reads line-at-a-time. Returns requests/sec.
fn phase_a_text(addr: SocketAddr, n: usize, line: &[u8], dur: Duration) -> f64 {
    let mut conns = connect_all(addr, n, false);
    for c in &mut conns {
        c.outbox.extend_from_slice(line);
        c.pending.push_back(Instant::now());
    }
    let mut scratch = vec![0u8; 64 * 1024];
    let mut completed = 0u64;
    let start = Instant::now();
    while start.elapsed() < dur {
        for c in &mut conns {
            c.pump_write();
            c.pump_read(&mut scratch);
            let done = c.take_lines();
            completed += done as u64;
            for _ in 0..done {
                c.outbox.extend_from_slice(line);
                c.pending.push_back(Instant::now());
            }
        }
    }
    completed as f64 / start.elapsed().as_secs_f64()
}

/// Closed-loop fixed request over the reactor's binary codec, pipelined
/// to `PIPELINE_DEPTH` per connection. Returns requests/sec.
fn phase_a_binary(addr: SocketAddr, n: usize, req: &Request, dur: Duration) -> f64 {
    let mut conns = connect_all(addr, n, true);
    let mut frame = Vec::new();
    codec::encode_request(req, &mut frame);
    for c in &mut conns {
        for _ in 0..PIPELINE_DEPTH {
            c.outbox.extend_from_slice(&frame);
            c.pending.push_back(Instant::now());
        }
    }
    let mut scratch = vec![0u8; 64 * 1024];
    let mut completed = 0u64;
    let start = Instant::now();
    while start.elapsed() < dur {
        for c in &mut conns {
            c.pump_write();
            c.pump_read(&mut scratch);
            let now = Instant::now();
            let done = c.take_binary_counts(codec::STATUS_OK);
            completed += done as u64;
            for _ in 0..done {
                c.outbox.extend_from_slice(&frame);
                c.pending.push_back(now);
            }
        }
    }
    completed as f64 / start.elapsed().as_secs_f64()
}

struct OpenLoopRun {
    offered_rps: f64,
    completed: u64,
    latencies_us: Vec<f64>,
}

/// Open-loop injection: requests go out on a fixed global schedule,
/// round-robin across connections, whether or not earlier ones have
/// completed. Latency is measured from the *scheduled* send time, so
/// server-side queueing under pressure shows up in the tail instead of
/// silently slowing the offered rate (the closed-loop coordination
/// omission).
fn phase_b_open_loop(addr: SocketAddr, n: usize, offered_rps: f64, dur: Duration) -> OpenLoopRun {
    let mut conns = connect_all(addr, n, true);
    let req = Request::Query {
        text: "COUNT".to_string(),
    };
    let mut frame = Vec::new();
    codec::encode_request(&req, &mut frame);

    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let mut scratch = vec![0u8; 64 * 1024];
    let mut latencies_us: Vec<f64> = Vec::new();
    let start = Instant::now();
    let mut next_send = start;
    let mut rr = 0usize;
    loop {
        let now = Instant::now();
        let injecting = now.duration_since(start) < dur;
        if injecting {
            while next_send <= Instant::now() {
                let c = &mut conns[rr % n];
                rr += 1;
                c.outbox.extend_from_slice(&frame);
                c.pending.push_back(next_send);
                next_send += interval;
            }
        }
        let mut outstanding = 0usize;
        for c in &mut conns {
            c.pump_write();
            c.pump_read(&mut scratch);
            let now = Instant::now();
            for (status, lat) in c.take_binary(now) {
                assert_eq!(status, codec::STATUS_OK, "unexpected non-OK in phase B");
                latencies_us.push(lat.as_secs_f64() * 1e6);
            }
            outstanding += c.pending.len() + c.outbox.len();
        }
        if !injecting {
            // Grace period: collect stragglers, then stop.
            if outstanding == 0 || now.duration_since(start) > dur + Duration::from_secs(5) {
                break;
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    OpenLoopRun {
        offered_rps,
        completed: latencies_us.len() as u64,
        latencies_us,
    }
}

struct OverloadRun {
    admitted: u64,
    shed: u64,
    admitted_latencies_us: Vec<f64>,
}

/// Closed-loop flood against a reactor whose tenant bucket is far smaller
/// than the offered load: most requests must come back `BUSY` immediately
/// while the admitted ones keep their ordinary latency.
fn phase_c_overload(addr: SocketAddr, dur: Duration) -> OverloadRun {
    let mut conns = connect_all(addr, OVERLOAD_CONNS, true);
    let req = Request::Query {
        text: "COUNT".to_string(),
    };
    for c in &mut conns {
        for _ in 0..OVERLOAD_DEPTH {
            codec::encode_request(&req, &mut c.outbox);
            c.pending.push_back(Instant::now());
        }
    }
    let mut scratch = vec![0u8; 64 * 1024];
    let mut run = OverloadRun {
        admitted: 0,
        shed: 0,
        admitted_latencies_us: Vec::new(),
    };
    let start = Instant::now();
    while start.elapsed() < dur {
        for c in &mut conns {
            c.pump_write();
            c.pump_read(&mut scratch);
            let now = Instant::now();
            for (status, lat) in c.take_binary(now) {
                match status {
                    codec::STATUS_OK => {
                        run.admitted += 1;
                        run.admitted_latencies_us.push(lat.as_secs_f64() * 1e6);
                    }
                    codec::STATUS_BUSY => run.shed += 1,
                    other => panic!("unexpected status {other} under overload"),
                }
                codec::encode_request(&req, &mut c.outbox);
                c.pending.push_back(now);
            }
        }
    }
    run
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let records: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let open_loop_conns: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(1_088);
    let phase_ms: u64 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let dur = Duration::from_millis(phase_ms);
    let min_speedup = env_f64("SAT_MIN_SPEEDUP", 5.0);
    let max_admitted_p99_us = env_f64("SAT_MAX_ADMITTED_P99_US", 500_000.0);
    let offered_rps = env_f64("SAT_OPEN_LOOP_RPS", 4_000.0);

    let data = generate(&TpcdConfig::scaled(records, 77));
    let engine = Arc::new(
        ShardedDcTree::new(
            data.schema.clone(),
            EngineConfig {
                num_shards: 2,
                policy: PartitionPolicy::Hash,
                ..Default::default()
            },
        )
        .expect("engine"),
    );
    for r in &data.records {
        engine
            .insert_raw(&data.paths_for(r), r.measure)
            .expect("insert");
    }
    engine.flush();

    // ── Phase A ─────────────────────────────────────────────────────────
    // Two workloads, both servers each. PING isolates front-end request
    // overhead — transport, framing, dispatch — which is what this PR
    // changed and what the ≥ 5× assertion holds; on the reactor it is
    // answered inline on the event loop. COUNT adds the identical
    // parse/plan/execute engine path on both sides, so it reports how much
    // of the front-end win survives a real (if minimal) data-plane verb.
    let legacy =
        serve(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).expect("legacy server");
    eprintln!("phase A: 256-conn closed loop, legacy thread-per-connection text …");
    let legacy_ping_rps = phase_a_text(legacy.local_addr(), 256, b"PING\n", dur);
    let legacy_count_rps = phase_a_text(legacy.local_addr(), 256, b"COUNT\n", dur);
    legacy.stop();

    let reactor = serve_reactor(Arc::clone(&engine), "127.0.0.1:0", ReactorConfig::default())
        .expect("reactor");
    eprintln!("phase A: 256-conn closed loop, reactor pipelined binary (depth {PIPELINE_DEPTH}) …");
    let reactor_ping_rps = phase_a_binary(reactor.local_addr(), 256, &Request::Ping, dur);
    let count_req = Request::Query {
        text: "COUNT".to_string(),
    };
    let reactor_count_rps = phase_a_binary(reactor.local_addr(), 256, &count_req, dur);
    let speedup = reactor_ping_rps / legacy_ping_rps;
    let count_speedup = reactor_count_rps / legacy_count_rps;
    eprintln!(
        "phase A: PING legacy {legacy_ping_rps:.0} → reactor {reactor_ping_rps:.0} req/s \
         ({speedup:.1}x); COUNT {legacy_count_rps:.0} → {reactor_count_rps:.0} req/s \
         ({count_speedup:.1}x)"
    );

    // ── Phase B ─────────────────────────────────────────────────────────
    eprintln!("phase B: {open_loop_conns}-conn open loop at {offered_rps:.0} req/s …");
    let open_loop = phase_b_open_loop(reactor.local_addr(), open_loop_conns, offered_rps, dur);
    let mut sorted = open_loop.latencies_us.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99, p999) = (
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.99),
        percentile(&sorted, 0.999),
    );
    eprintln!(
        "phase B: {} completed, p50 {p50:.0} µs, p99 {p99:.0} µs, p999 {p999:.0} µs",
        open_loop.completed
    );
    reactor.stop();

    // ── Phase C ─────────────────────────────────────────────────────────
    // A budget of ~1.5k admits over the phase, against a closed-loop flood
    // that can push two orders of magnitude more: shedding is guaranteed,
    // and on the shed path the reactor answers inline without queueing.
    let tight = ReactorConfig {
        admission: AdmissionConfig {
            tenant_rate: 500.0,
            tenant_burst: 500.0,
            queue_high_water: 16_384,
        },
        ..Default::default()
    };
    let throttled = serve_reactor(Arc::clone(&engine), "127.0.0.1:0", tight).expect("reactor");
    eprintln!("phase C: {OVERLOAD_CONNS}-conn flood against a 500 req/s tenant budget …");
    let overload = phase_c_overload(throttled.local_addr(), dur);
    let mut adm = overload.admitted_latencies_us.clone();
    adm.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let admitted_p99 = percentile(&adm, 0.99);
    let offered = overload.admitted + overload.shed;
    let shed_rate = overload.shed as f64 / offered.max(1) as f64;
    eprintln!(
        "phase C: {} admitted / {} shed (shed rate {:.1}%), admitted p99 {admitted_p99:.0} µs",
        overload.admitted,
        overload.shed,
        shed_rate * 100.0
    );
    throttled.stop();
    engine.shutdown();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"records\": {records},\n"));
    json.push_str(&format!("  \"phase_ms\": {phase_ms},\n"));
    json.push_str("  \"throughput_256_conns\": {\n");
    json.push_str(&format!(
        "    \"ping_legacy_text_rps\": {legacy_ping_rps:.1},\n    \"ping_reactor_pipelined_rps\": {reactor_ping_rps:.1},\n"
    ));
    json.push_str(&format!(
        "    \"count_legacy_text_rps\": {legacy_count_rps:.1},\n    \"count_reactor_pipelined_rps\": {reactor_count_rps:.1},\n"
    ));
    json.push_str(&format!(
        "    \"pipeline_depth\": {PIPELINE_DEPTH},\n    \"ping_speedup\": {speedup:.2},\n    \"count_speedup\": {count_speedup:.2}\n  }},\n"
    ));
    json.push_str("  \"open_loop\": {\n");
    json.push_str(&format!(
        "    \"connections\": {open_loop_conns},\n    \"offered_rps\": {:.1},\n",
        open_loop.offered_rps
    ));
    json.push_str(&format!(
        "    \"completed\": {},\n    \"open_loop_p50_us\": {p50:.1},\n",
        open_loop.completed
    ));
    json.push_str(&format!(
        "    \"open_loop_p99_us\": {p99:.1},\n    \"open_loop_p999_us\": {p999:.1}\n  }},\n"
    ));
    json.push_str("  \"overload\": {\n");
    json.push_str(&format!(
        "    \"connections\": {OVERLOAD_CONNS},\n    \"admitted\": {},\n    \"shed\": {},\n",
        overload.admitted, overload.shed
    ));
    json.push_str(&format!(
        "    \"shed_rate\": {shed_rate:.4},\n    \"overload_admitted_p99_us\": {admitted_p99:.1}\n  }}\n"
    ));
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("mkdir results");
    let path = "results/saturation_bench.json";
    std::fs::write(path, &json).expect("write report");
    println!("report written to {path}");

    // The no-collapse contract; any violation fails the bench loudly.
    let mut failed = false;
    if open_loop_conns >= 1_024 && open_loop.completed == 0 {
        eprintln!("FAIL: open loop completed no requests");
        failed = true;
    }
    if speedup < min_speedup {
        eprintln!("FAIL: reactor PING speedup {speedup:.2}x < required {min_speedup:.1}x");
        failed = true;
    }
    if overload.shed == 0 {
        eprintln!("FAIL: overload phase shed nothing — backpressure is not engaging");
        failed = true;
    }
    if admitted_p99 > max_admitted_p99_us {
        eprintln!(
            "FAIL: admitted p99 {admitted_p99:.0} µs > {max_admitted_p99_us:.0} µs — \
             the server is queueing instead of shedding"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
