//! **Ablations** — quantifying the design choices called out in `DESIGN.md`.
//!
//! * **A1** materialized aggregates on/off: how much of the DC-tree's query
//!   advantage comes from Fig. 7's contained-entry shortcut versus pure MDS
//!   pruning.
//! * **A2** supernodes on/off: forced (possibly overlapping/unbalanced)
//!   splits instead of multi-block nodes.
//! * **A3** split-acceptance thresholds: sweep of `max_overlap` (and the
//!   paper's X-tree-inherited 35% `min_fill`) — the knob where this
//!   reproduction's default deviates from the paper (see `DcTreeConfig`).
//! * **A4** MDS vs MBR dead space: the volume an MBR wastes relative to the
//!   MDS describing the same node content (the paper's Fig. 3 argument).
//! * **A5** data skew: TPC-D draws entities uniformly; real warehouses are
//!   Zipf-skewed. Sweeps the generator's Zipf exponent and reports how the
//!   structure and the query costs respond.
//! * **A6** memory normalization: replays each engine's block-access trace
//!   through an LRU cache of a fixed frame budget, making the paper's
//!   "memory available for the X-tree was restricted to the memory size the
//!   DC-tree uses" comparison executable (physical reads per query).
//!
//! ```sh
//! cargo run --release -p dc-bench --bin ablations [records]
//! ```

use std::time::Instant;

use dc_query::{RangeQueryGen, ValuePick};
use dc_tpcd::{generate, TpcdConfig, TpcdData};
use dc_tree::{DcTree, DcTreeConfig};

fn load(data: &TpcdData, config: DcTreeConfig) -> (DcTree, std::time::Duration) {
    let mut dc = DcTree::new(data.schema.clone(), config);
    let t0 = Instant::now();
    for r in &data.records {
        dc.insert(r.clone()).expect("insert");
    }
    (dc, t0.elapsed())
}

fn query_batch(data: &TpcdData, dc: &DcTree, sel: f64, n: usize) -> (std::time::Duration, f64) {
    let mut gen = RangeQueryGen::new(sel, ValuePick::ContiguousRun, 7);
    let queries: Vec<_> = (0..n).map(|_| gen.generate(&data.schema)).collect();
    dc.reset_io();
    let t0 = Instant::now();
    for q in &queries {
        let _ = dc.range_summary(q).expect("query");
    }
    (
        t0.elapsed() / n as u32,
        dc.io_stats().reads as f64 / n as f64,
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let queries = 100;
    let data = generate(&TpcdConfig::scaled(n, 42));
    let base = DcTreeConfig::default();

    println!("A1 — materialized aggregates ({n} records, {queries} queries/point)");
    println!(
        "{:>22} {:>7} {:>14} {:>10} {:>10}",
        "config", "sel", "time/query", "reads", "shortcuts"
    );
    for (label, config) in [
        ("sound containment", base),
        (
            "descend-to-leaves",
            DcTreeConfig {
                use_materialized_aggregates: false,
                ..base
            },
        ),
        (
            "paper Fig.7 (UNSOUND)",
            DcTreeConfig {
                use_paper_fig7_containment: true,
                ..base
            },
        ),
    ] {
        let (dc, _) = load(&data, config);
        for sel in [0.01, 0.05, 0.25] {
            let before = dc.metrics().shortcut_hits;
            let (t, reads) = query_batch(&data, &dc, sel, queries);
            let hits = dc.metrics().shortcut_hits - before;
            println!(
                "{label:>22} {:>6.0}% {t:>14?} {reads:>10.0} {hits:>10}",
                sel * 100.0
            );
        }
    }
    println!(
        "  NOTE: under the paper's literal Fig. 7 adaptation the shortcut fires\n           far more often — and overcounts on mixed-level queries (see the\n           `paper_fig7_containment_overcounts` test). Under sound containment,\n           conjunctive random-level workloads rarely fully contain an entry, so\n           the DC-tree's advantage on this workload comes from MDS pruning.\n"
    );

    println!("A1b — roll-up workload (one dimension at a coarse level, rest ALL)");
    println!(
        "{:>22} {:>14} {:>10} {:>10}",
        "config", "time/query", "reads", "shortcuts"
    );
    {
        use dc_common::DimensionId;
        use dc_mds::{DimSet, Mds};
        let mut rollups = Vec::new();
        for d in 0..data.schema.num_dims() as u16 {
            let h = data.schema.dim(DimensionId(d));
            for level in 1..h.top_level() {
                for v in h.values_at(level) {
                    let dims = (0..data.schema.num_dims() as u16)
                        .map(|dd| {
                            if dd == d {
                                DimSet::singleton(v)
                            } else {
                                DimSet::singleton(data.schema.dim(DimensionId(dd)).all())
                            }
                        })
                        .collect();
                    rollups.push(Mds::new(dims));
                }
            }
        }
        rollups.truncate(300);
        for (label, config) in [
            ("sound containment", base),
            (
                "descend-to-leaves",
                DcTreeConfig {
                    use_materialized_aggregates: false,
                    ..base
                },
            ),
        ] {
            let (dc, _) = load(&data, config);
            dc.reset_io();
            let before = dc.metrics().shortcut_hits;
            let t0 = Instant::now();
            for q in &rollups {
                let _ = dc.range_summary(q).expect("query");
            }
            let t = t0.elapsed() / rollups.len() as u32;
            let reads = dc.io_stats().reads as f64 / rollups.len() as f64;
            let hits = dc.metrics().shortcut_hits - before;
            println!("{label:>22} {t:>14?} {reads:>10.0} {hits:>10}");
        }
    }

    println!("\nA2 — supernodes vs forced splits");
    println!(
        "{:>22} {:>14} {:>7} {:>7} {:>14} {:>10}",
        "config", "insert", "nodes", "super", "5% query", "reads"
    );
    for (label, config) in [
        ("supernodes (paper)", base),
        (
            "forced splits",
            DcTreeConfig {
                allow_supernodes: false,
                ..base
            },
        ),
    ] {
        let (dc, ins) = load(&data, config);
        let stats = dc.stats();
        let (t, reads) = query_batch(&data, &dc, 0.05, queries);
        println!(
            "{label:>22} {ins:>14?} {:>7} {:>7} {t:>14?} {reads:>10.0}",
            dc.num_nodes(),
            stats.supernodes
        );
    }

    println!("\nA3 — split-acceptance thresholds (max_overlap × min_fill)");
    println!(
        "{:>22} {:>14} {:>7} {:>14} {:>10} {:>14} {:>10}",
        "config", "insert", "dirs", "5% query", "reads", "25% query", "reads"
    );
    for max_overlap in [0.0, 0.05, 0.20] {
        for min_fill in [0.20, 0.35] {
            let config = DcTreeConfig {
                max_overlap,
                min_fill,
                ..base
            };
            let (dc, ins) = load(&data, config);
            let stats = dc.stats();
            let (t5, r5) = query_batch(&data, &dc, 0.05, queries);
            let (t25, r25) = query_batch(&data, &dc, 0.25, queries);
            let label = format!("ov={max_overlap:.2} mf={min_fill:.2}");
            println!(
                "{label:>22} {ins:>14?} {:>7} {t5:>14?} {r5:>10.0} {t25:>14?} {r25:>10.0}",
                stats.dir_nodes
            );
        }
    }

    println!("\nA5 — Zipf-skewed entity popularity (uniform = the paper's TPC-D)");
    println!(
        "{:>22} {:>14} {:>7} {:>7} {:>14} {:>10} {:>14} {:>10}",
        "skew", "insert", "nodes", "super", "1% query", "reads", "25% query", "reads"
    );
    for skew in [0.0, 0.8, 1.2] {
        let data = dc_tpcd::generate(&dc_tpcd::TpcdConfig::scaled_with_skew(n, 42, skew));
        let (dc, ins) = load(&data, base);
        let stats = dc.stats();
        let (t1, r1) = query_batch(&data, &dc, 0.01, queries);
        let (t25, r25) = query_batch(&data, &dc, 0.25, queries);
        println!(
            "{:>22} {ins:>14?} {:>7} {:>7} {t1:>14?} {r1:>10.0} {t25:>14?} {r25:>10.0}",
            format!("zipf={skew:.1}"),
            dc.num_nodes(),
            stats.supernodes
        );
    }

    println!("\nA6 — physical reads under an LRU memory budget (5% selectivity)");
    {
        use dc_query::mds_to_mbr;
        use dc_scan::FlatTable;
        use dc_storage::{BlockConfig, CacheSim};
        use dc_xtree::{XTree, XTreeConfig};

        let (dc, _) = load(&data, base);
        let mut x = XTree::new(data.schema.num_flat_axes(), XTreeConfig::default());
        let mut scan = FlatTable::for_schema(BlockConfig::DEFAULT, &data.schema);
        for r in &data.records {
            x.insert(data.schema.flatten_record(r).unwrap(), r.measure);
            scan.insert(r.clone());
        }
        let mut gen = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 7);
        let queries: Vec<_> = (0..queries).map(|_| gen.generate(&data.schema)).collect();
        let mbrs: Vec<_> = queries
            .iter()
            .map(|q| mds_to_mbr(&data.schema, q))
            .collect();

        dc.begin_trace();
        for q in &queries {
            let _ = dc.range_summary(q).expect("query");
        }
        let dc_trace = dc.end_trace();
        x.begin_trace();
        for m in &mbrs {
            let _ = x.range_summary(m);
        }
        let x_trace = x.end_trace();
        scan.begin_trace();
        for q in &queries {
            let _ = scan.range_summary(&data.schema, q).expect("query");
        }
        let scan_trace = scan.end_trace();

        // Memory budgets as fractions of the DC-tree's own block count —
        // the paper's normalization.
        let dc_blocks: f64 = dc
            .stats()
            .levels
            .iter()
            .map(|l| l.nodes as f64 * l.avg_blocks)
            .sum();
        println!(
            "  DC-tree occupies {:.0} blocks; budgets below are fractions of that.",
            dc_blocks
        );
        println!(
            "{:>10} {:>10} {:>16} {:>16} {:>16}",
            "budget", "frames", "DC phys/query", "X phys/query", "scan phys/query"
        );
        for fraction in [0.05, 0.25, 1.00] {
            let frames = ((dc_blocks * fraction) as usize).max(1);
            let rep_dc = CacheSim::replay(frames, dc_trace.iter().copied());
            let rep_x = CacheSim::replay(frames, x_trace.iter().copied());
            let rep_scan = CacheSim::replay(frames, scan_trace.iter().copied());
            println!(
                "{:>9.0}% {frames:>10} {:>16.1} {:>16.1} {:>16.1}",
                fraction * 100.0,
                rep_dc.physical as f64 / queries.len() as f64,
                rep_x.physical as f64 / queries.len() as f64,
                rep_scan.physical as f64 / queries.len() as f64,
            );
        }
    }

    println!("\nA4 — dead space: MDS vs enclosing-MBR description of data nodes");
    let (dc, _) = load(&data, base);
    let report = dc.dead_space_report();
    let stats = dc.stats();
    println!(
        "  {} data nodes: occupied leaf cells (MDS view) = {}, interval \
         cells (MBR view) = {} → ×{:.1} dead-space blow-up for the totally \
         ordered description (Fig. 3).",
        report.data_nodes,
        report.mds_cells,
        report.mbr_cells,
        report.blowup()
    );
    println!(
        "  directory MDS storage: {} listed values across {} nodes \
         (avg {:.1} values/node) — the price the DC-tree pays for that \
         precision is a variable-size directory entry.",
        stats.total_mds_size,
        stats.dir_nodes + stats.data_nodes,
        stats.total_mds_size as f64 / (stats.dir_nodes + stats.data_nodes) as f64
    );
}
