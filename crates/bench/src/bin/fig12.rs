//! **Figure 12** — average time per range query.
//!
//! (a) selectivity 1%:  DC-tree vs X-tree, over a sweep of cube sizes
//! (b) selectivity 5%:  DC-tree vs X-tree (the paper's sweet spot)
//! (c) selectivity 25%: DC-tree vs X-tree (the DC-tree's worst case)
//! (d) selectivity 25%: DC-tree vs sequential search
//!
//! Each point averages the paper's 100 random queries (§5.2); every query is
//! answered by all three engines and the answers are asserted identical.
//! Alongside wall time the harness reports **logical page reads** — the
//! machine-independent metric on which the paper's disk-bound 1999 numbers
//! are grounded.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin fig12 [max_records] [queries_per_point]
//! ```

use dc_bench::harness::{build_engines, run_queries};

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let queries: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let mut sizes = Vec::new();
    let mut n = 12_500;
    while n <= max_n {
        sizes.push(n);
        n *= 2;
    }
    if sizes.last().copied() != Some(max_n) {
        sizes.push(max_n);
    }

    let engines: Vec<_> = sizes.iter().map(|&n| (n, build_engines(n, 42))).collect();

    for (fig, sel) in [("(a)", 0.01), ("(b)", 0.05), ("(c)", 0.25)] {
        println!(
            "\nFigure 12{fig}: avg time per query, selectivity {:.0}% — DC-tree vs X-tree",
            sel * 100.0
        );
        println!(
            "{:>10} {:>14} {:>10} {:>14} {:>10} {:>9} {:>9}",
            "records", "DC time", "DC reads", "X time", "X reads", "t X/DC", "io X/DC"
        );
        for (n, e) in &engines {
            let r = run_queries(e, sel, queries, 7);
            println!(
                "{n:>10} {:>14?} {:>10.0} {:>14?} {:>10.0} {:>8.1}x {:>8.1}x",
                r.dc.avg_time,
                r.dc.avg_reads,
                r.x.avg_time,
                r.x.avg_reads,
                r.x.avg_time.as_secs_f64() / r.dc.avg_time.as_secs_f64(),
                r.x.avg_reads / r.dc.avg_reads,
            );
        }
    }

    println!("\nFigure 12(d): selectivity 25% — DC-tree vs sequential search");
    println!(
        "{:>10} {:>14} {:>10} {:>14} {:>10} {:>9} {:>9}",
        "records", "DC time", "DC reads", "scan time", "scan reads", "t S/DC", "io S/DC"
    );
    for (n, e) in &engines {
        let r = run_queries(e, 0.25, queries, 7);
        println!(
            "{n:>10} {:>14?} {:>10.0} {:>14?} {:>10.0} {:>8.1}x {:>8.1}x",
            r.dc.avg_time,
            r.dc.avg_reads,
            r.scan.avg_time,
            r.scan.avg_reads,
            r.scan.avg_time.as_secs_f64() / r.dc.avg_time.as_secs_f64(),
            r.scan.avg_reads / r.dc.avg_reads,
        );
    }

    println!("\nExtra (related work, §2): DC-tree vs compressed bitmap index");
    println!(
        "{:>10} {:>5} {:>14} {:>10} {:>14} {:>10}",
        "records", "sel", "DC time", "DC reads", "bitmap time", "bm reads"
    );
    for (n, e) in &engines {
        for sel in [0.01, 0.25] {
            let r = run_queries(e, sel, queries, 7);
            println!(
                "{n:>10} {:>4.0}% {:>14?} {:>10.0} {:>14?} {:>10.0}",
                sel * 100.0,
                r.dc.avg_time,
                r.dc.avg_reads,
                r.bitmap.avg_time,
                r.bitmap.avg_reads,
            );
        }
    }
    println!(
        "\nPaper: ~4.5x speed-up over the X-tree across selectivities and \
         ~12.5x over the sequential search at 25%; 5% queries are the \
         fastest absolute point (the trade-off between containment shortcuts \
         and overlap-computation cost, §5.3)."
    );
}
