//! Workload runners shared by the figure-reproduction binaries.

use std::time::{Duration, Instant};

use dc_bitmap::BitmapIndex;
use dc_common::MeasureSummary;
use dc_query::{mds_to_mbr, RangeQueryGen, ValuePick};
use dc_scan::FlatTable;
use dc_storage::BlockConfig;
use dc_tpcd::{generate, TpcdConfig, TpcdData};
use dc_tree::{DcTree, DcTreeConfig};
use dc_xtree::{XTree, XTreeConfig};

/// The three engines of the evaluation, loaded with the same cube.
pub struct Engines {
    /// The generated cube (schema + records).
    pub data: TpcdData,
    /// The DC-tree.
    pub dc: DcTree,
    /// The X-tree over the 13 flat axes.
    pub x: XTree,
    /// The sequential scan.
    pub scan: FlatTable,
    /// The compressed bitmap index (§2 related-work baseline).
    pub bitmap: BitmapIndex,
    /// Wall time spent inserting into the DC-tree.
    pub dc_insert_time: Duration,
    /// Wall time spent inserting into the X-tree.
    pub x_insert_time: Duration,
    /// Wall time spent inserting into the bitmap index.
    pub bitmap_insert_time: Duration,
}

/// Generates `lineitems` records and loads all three engines,
/// record-at-a-time, timing the inserts.
pub fn build_engines(lineitems: usize, seed: u64) -> Engines {
    let data = generate(&TpcdConfig::scaled(lineitems, seed));
    let mut dc = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    let mut x = XTree::new(data.schema.num_flat_axes(), XTreeConfig::default());
    let mut scan = FlatTable::for_schema(BlockConfig::DEFAULT, &data.schema);
    let mut bitmap = BitmapIndex::new(&data.schema, BlockConfig::DEFAULT);

    let flat: Vec<Vec<u32>> = data
        .records
        .iter()
        .map(|r| data.schema.flatten_record(r).unwrap())
        .collect();

    let t0 = Instant::now();
    for r in &data.records {
        dc.insert(r.clone()).unwrap();
    }
    let dc_insert_time = t0.elapsed();

    let t0 = Instant::now();
    for (coords, r) in flat.into_iter().zip(&data.records) {
        x.insert(coords, r.measure);
    }
    let x_insert_time = t0.elapsed();

    for r in &data.records {
        scan.insert(r.clone());
    }

    let t0 = Instant::now();
    for r in &data.records {
        bitmap.insert(&data.schema, r).expect("bitmap insert");
    }
    let bitmap_insert_time = t0.elapsed();

    Engines {
        data,
        dc,
        x,
        scan,
        bitmap,
        dc_insert_time,
        x_insert_time,
        bitmap_insert_time,
    }
}

/// Result of one engine's query batch.
#[derive(Clone, Copy, Debug)]
pub struct QueryRun {
    /// Average wall time per query.
    pub avg_time: Duration,
    /// Average logical page reads per query.
    pub avg_reads: f64,
}

/// Per-engine results of one query batch.
#[derive(Clone, Copy, Debug)]
pub struct BatchResults {
    /// DC-tree.
    pub dc: QueryRun,
    /// X-tree.
    pub x: QueryRun,
    /// Sequential scan.
    pub scan: QueryRun,
    /// Bitmap index.
    pub bitmap: QueryRun,
}

/// Runs `n` random contiguous-run queries of the given selectivity against
/// all four engines, asserting identical answers.
pub fn run_queries(e: &Engines, selectivity: f64, n: usize, seed: u64) -> BatchResults {
    let mut gen = RangeQueryGen::new(selectivity, ValuePick::ContiguousRun, seed);
    let queries: Vec<_> = (0..n).map(|_| gen.generate(&e.data.schema)).collect();
    let mbrs: Vec<_> = queries
        .iter()
        .map(|q| mds_to_mbr(&e.data.schema, q))
        .collect();

    e.dc.reset_io();
    let t0 = Instant::now();
    let dc_answers: Vec<MeasureSummary> = queries
        .iter()
        .map(|q| e.dc.range_summary(q).unwrap())
        .collect();
    let dc_time = t0.elapsed();
    let dc_reads = e.dc.io_stats().reads;

    e.x.reset_io();
    let t0 = Instant::now();
    let x_answers: Vec<MeasureSummary> = mbrs.iter().map(|m| e.x.range_summary(m)).collect();
    let x_time = t0.elapsed();
    let x_reads = e.x.io_stats().reads;

    e.scan.reset_io();
    let t0 = Instant::now();
    let scan_answers: Vec<MeasureSummary> = queries
        .iter()
        .map(|q| e.scan.range_summary(&e.data.schema, q).unwrap())
        .collect();
    let scan_time = t0.elapsed();
    let scan_reads = e.scan.io_stats().reads;

    e.bitmap.reset_io();
    let t0 = Instant::now();
    let bitmap_answers: Vec<MeasureSummary> = queries
        .iter()
        .map(|q| e.bitmap.range_summary(&e.data.schema, q).unwrap())
        .collect();
    let bitmap_time = t0.elapsed();
    let bitmap_reads = e.bitmap.io_stats().reads;

    assert_eq!(dc_answers, scan_answers, "DC-tree and scan disagree");
    assert_eq!(dc_answers, x_answers, "DC-tree and X-tree disagree");
    assert_eq!(
        dc_answers, bitmap_answers,
        "DC-tree and bitmap index disagree"
    );

    BatchResults {
        dc: QueryRun {
            avg_time: dc_time / n as u32,
            avg_reads: dc_reads as f64 / n as f64,
        },
        x: QueryRun {
            avg_time: x_time / n as u32,
            avg_reads: x_reads as f64 / n as f64,
        },
        scan: QueryRun {
            avg_time: scan_time / n as u32,
            avg_reads: scan_reads as f64 / n as f64,
        },
        bitmap: QueryRun {
            avg_time: bitmap_time / n as u32,
            avg_reads: bitmap_reads as f64 / n as f64,
        },
    }
}
