//! The bench-regression gate: compares freshly produced bench reports
//! against committed baselines and fails on mean-latency regressions.
//!
//! The reports are the flat machine-generated JSON the bench binaries emit
//! (`results/*.json`); values are extracted textually, in document order, so
//! a key that appears once per run/config (`mean_query_us`, `avg_query_us`,
//! `recovery_ms`) is compared position-by-position. Latency semantics:
//! bigger is worse, and a current value more than `max_regression` above its
//! baseline fails the gate. Throughput keys are deliberately not gated —
//! they are noisier on shared CI hosts, and every latency key here is the
//! inverse signal anyway.

/// Which keys of which report the gate watches.
pub struct GateSpec {
    /// Report file name, relative to both the baseline and current dirs.
    pub file: &'static str,
    /// Latency keys (µs or ms — unit-agnostic, ratios only).
    pub keys: &'static [&'static str],
}

/// The watched reports. Keys may appear multiple times per file (one per
/// run or config); occurrences are matched by position.
pub const GATED_REPORTS: &[GateSpec] = &[
    GateSpec {
        file: "cache_bench.json",
        keys: &["mean_query_us"],
    },
    GateSpec {
        file: "serve_bench.json",
        keys: &["avg_query_us"],
    },
    GateSpec {
        file: "query_bench.json",
        keys: &["mean_query_us"],
    },
    GateSpec {
        file: "recovery_bench.json",
        keys: &["recovery_ms"],
    },
    GateSpec {
        file: "plan_bench.json",
        keys: &["planner_mean_us"],
    },
    GateSpec {
        file: "oocore_bench.json",
        keys: &["mean_query_us"],
    },
    GateSpec {
        file: "replication_bench.json",
        keys: &["catchup_ms", "mean_lag_ms", "promotion_ms"],
    },
    GateSpec {
        file: "saturation_bench.json",
        keys: &[
            "open_loop_p99_us",
            "open_loop_p999_us",
            "overload_admitted_p99_us",
        ],
    },
    GateSpec {
        file: "ingest_bench.json",
        keys: &[
            "record_at_a_time_us_per_record",
            "batched_us_per_record",
            "bulk_us_per_record",
            "engine_batched_us_per_record",
        ],
    },
];

/// One comparison that exceeded the allowed regression.
#[derive(Debug, PartialEq)]
pub struct Regression {
    /// The JSON key.
    pub key: String,
    /// Which occurrence of the key (0-based, document order).
    pub index: usize,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl Regression {
    /// `current / baseline`.
    pub fn ratio(&self) -> f64 {
        self.current / self.baseline
    }
}

/// Every numeric value of `"key":` in document order.
pub fn extract_all(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let end = rest.find([',', '}', ']', '\n']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// Compares each watched key of one report pair. Returns the regressions;
/// `Err` when the reports are structurally incomparable (an occurrence-count
/// mismatch means the bench preset changed and the baseline must be
/// refreshed, not silently skipped).
pub fn compare_report(
    baseline: &str,
    current: &str,
    keys: &[&str],
    max_regression: f64,
) -> Result<Vec<Regression>, String> {
    let mut regressions = Vec::new();
    for key in keys {
        let base = extract_all(baseline, key);
        let cur = extract_all(current, key);
        if base.is_empty() {
            return Err(format!("baseline has no \"{key}\" values"));
        }
        if base.len() != cur.len() {
            return Err(format!(
                "\"{key}\": baseline has {} values, current has {} — \
                 bench shape changed, refresh the baseline",
                base.len(),
                cur.len()
            ));
        }
        for (index, (&b, &c)) in base.iter().zip(&cur).enumerate() {
            if b > 0.0 && c > b * (1.0 + max_regression) {
                regressions.push(Regression {
                    key: key.to_string(),
                    index,
                    baseline: b,
                    current: c,
                });
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"runs": [
        {"shards": 1, "avg_query_us": 900.0, "queries_per_sec": 1100.0},
        {"shards": 4, "avg_query_us": 400.0, "queries_per_sec": 2500.0}
    ]}"#;

    #[test]
    fn extracts_every_occurrence_in_order() {
        assert_eq!(extract_all(BASE, "avg_query_us"), vec![900.0, 400.0]);
        assert_eq!(extract_all(BASE, "missing"), Vec::<f64>::new());
    }

    #[test]
    fn value_closing_an_array_is_extracted() {
        // A gated key whose value is the last element of a JSON array used
        // to parse as nothing (']' was missing from the terminator set),
        // which turned a real regression into a shape-change error at best
        // and a silent pass at worst.
        let json = r#"{"per_run_us": [12.5, "x": 5.0], "tail_ms": 7.25]}"#;
        assert_eq!(extract_all(json, "x"), vec![5.0]);
        assert_eq!(extract_all(json, "tail_ms"), vec![7.25]);
    }

    #[test]
    fn within_budget_passes() {
        let current = BASE.replace("400.0", "480.0"); // +20% < 25%
        let r = compare_report(BASE, &current, &["avg_query_us"], 0.25).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn over_budget_fails_with_position() {
        let current = BASE.replace("400.0", "600.0"); // +50%
        let r = compare_report(BASE, &current, &["avg_query_us"], 0.25).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].index, 1);
        assert_eq!(r[0].baseline, 400.0);
        assert_eq!(r[0].current, 600.0);
        assert!((r[0].ratio() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn improvements_never_fail() {
        let current = BASE.replace("900.0", "10.0");
        let r = compare_report(BASE, &current, &["avg_query_us"], 0.25).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn shape_change_is_an_error_not_a_pass() {
        let current = r#"{"runs": [{"avg_query_us": 900.0}]}"#;
        assert!(compare_report(BASE, current, &["avg_query_us"], 0.25).is_err());
        assert!(compare_report(BASE, current, &["missing"], 0.25).is_err());
    }

    #[test]
    fn threshold_is_configurable() {
        let current = BASE.replace("400.0", "480.0"); // +20%
        let strict = compare_report(BASE, &current, &["avg_query_us"], 0.10).unwrap();
        assert_eq!(strict.len(), 1);
    }
}
