//! Shared harness utilities for the DC-tree benchmark binaries.
pub mod gate;
pub mod harness;
