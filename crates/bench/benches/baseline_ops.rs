//! Criterion micro-benchmarks of the substrate layers: WAH bitmap algebra,
//! the bitmap index, and the paged-file / buffer-pool storage path.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_bitmap::{BitmapIndex, CompressedBitmap};
use dc_query::{RangeQueryGen, ValuePick};
use dc_storage::{BlockConfig, BufferPool, PagedFile};
use dc_tpcd::{generate, TpcdConfig};

fn bench_wah(c: &mut Criterion) {
    // Two sparse bitmaps over 1M positions.
    let mut a = CompressedBitmap::new();
    let mut b = CompressedBitmap::new();
    for i in 0..10_000u64 {
        a.set(i * 100);
        b.set(i * 100 + (i % 50));
    }
    let mut g = c.benchmark_group("wah");
    g.bench_function("or/sparse-10k", |bch| bch.iter(|| a.or(&b)));
    g.bench_function("and/sparse-10k", |bch| bch.iter(|| a.and(&b)));
    g.bench_function("count_ones", |bch| bch.iter(|| a.count_ones()));
    g.bench_function("iter_ones/full", |bch| bch.iter(|| a.iter_ones().count()));
    g.finish();
}

fn bench_bitmap_index(c: &mut Criterion) {
    let data = generate(&TpcdConfig::scaled(20_000, 1));
    let mut idx = BitmapIndex::new(&data.schema, BlockConfig::DEFAULT);
    for r in &data.records {
        idx.insert(&data.schema, r).unwrap();
    }
    let mut g = c.benchmark_group("bitmap_index");
    g.sample_size(30);
    for sel in [0.01, 0.25] {
        let mut gen = RangeQueryGen::new(sel, ValuePick::ContiguousRun, 7);
        let queries: Vec<_> = (0..32).map(|_| gen.generate(&data.schema)).collect();
        let mut i = 0usize;
        g.bench_function(format!("query/{:.0}%", sel * 100.0), |bch| {
            bch.iter(|| {
                i += 1;
                idx.range_summary(&data.schema, &queries[i % queries.len()])
                    .unwrap()
            })
        });
    }
    let mut schema = data.schema.clone();
    let extra = schema
        .intern_record(
            &[
                vec!["EUROPE", "GERMANY", "MACHINERY", "Customer#000000001"],
                vec!["EUROPE", "GERMANY", "Supplier#000000001"],
                vec!["Brand#11", "STANDARD ANODIZED TIN", "Part#000000001"],
                vec!["1996", "1996-01", "1996-01-01"],
            ],
            100,
        )
        .unwrap();
    g.bench_function("insert", |bch| {
        bch.iter(|| idx.insert(&schema, &extra).unwrap())
    });
    g.finish();
}

fn bench_storage(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("dc-bench-storage");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("bench-{}", std::process::id()));
    let file = PagedFile::create(&path, BlockConfig::DEFAULT).unwrap();
    let mut pool = BufferPool::new(file, 64);
    let pages: Vec<_> = (0..256).map(|_| pool.alloc().unwrap()).collect();
    for (i, &p) in pages.iter().enumerate() {
        pool.with_page_mut(p, |d| d[0] = i as u8).unwrap();
    }
    let mut g = c.benchmark_group("storage");
    let mut i = 0usize;
    g.bench_function("pool_read/cold+hot_mix", |bch| {
        bch.iter(|| {
            i += 1;
            pool.with_page(pages[i % pages.len()], |d| d[0]).unwrap()
        })
    });
    let hot = pages[0];
    g.bench_function("pool_read/hot", |bch| {
        bch.iter(|| pool.with_page(hot, |d| d[0]).unwrap())
    });
    g.bench_function("pool_write/hot", |bch| {
        bch.iter(|| {
            pool.with_page_mut(hot, |d| d[1] = d[1].wrapping_add(1))
                .unwrap()
        })
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_wah, bench_bitmap_index, bench_storage
}
criterion_main!(benches);
