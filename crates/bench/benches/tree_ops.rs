//! Criterion micro-benchmarks of whole-tree operations: single inserts,
//! range queries per selectivity (DC-tree vs X-tree vs scan), and deletes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dc_query::{mds_to_mbr, RangeQueryGen, ValuePick};
use dc_scan::FlatTable;
use dc_storage::BlockConfig;
use dc_tpcd::{generate, TpcdConfig};
use dc_tree::{DcTree, DcTreeConfig};
use dc_xtree::{XTree, XTreeConfig};

const N: usize = 20_000;
/// Mutation benches clone the whole tree in their (untimed) setup, so they
/// use a smaller cube to keep the wall-clock of the run sane.
const N_MUT: usize = 4_000;

fn bench_tree_ops(c: &mut Criterion) {
    let data = generate(&TpcdConfig::scaled(N, 1));
    let mut dc = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    let mut x = XTree::new(data.schema.num_flat_axes(), XTreeConfig::default());
    let mut scan = FlatTable::for_schema(BlockConfig::DEFAULT, &data.schema);
    for r in &data.records {
        dc.insert(r.clone()).unwrap();
        x.insert(data.schema.flatten_record(r).unwrap(), r.measure);
        scan.insert(r.clone());
    }

    let mut_data = generate(&TpcdConfig::scaled(N_MUT, 1));
    let mut mut_dc = DcTree::new(mut_data.schema.clone(), DcTreeConfig::default());
    for r in &mut_data.records {
        mut_dc.insert(r.clone()).unwrap();
    }

    let mut g = c.benchmark_group("insert");
    g.sample_size(20);
    let extra = generate(&TpcdConfig::scaled(N_MUT, 2));
    let mut cursor = 0usize;
    g.bench_function("dc_tree", |b| {
        b.iter_batched(
            || {
                // Records from a second seed: not yet present in the tree's
                // schema clone, so intern them via raw paths.
                let r = &extra.records[cursor % extra.records.len()];
                cursor += 1;
                (mut_dc.clone(), extra.paths_for(r), r.measure)
            },
            |(mut tree, paths, m)| tree.insert_raw(&paths, m).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();

    let mut g = c.benchmark_group("range_query");
    g.sample_size(30);
    for sel in [0.01, 0.05, 0.25] {
        let mut gen = RangeQueryGen::new(sel, ValuePick::ContiguousRun, 7);
        let queries: Vec<_> = (0..64).map(|_| gen.generate(&data.schema)).collect();
        let mbrs: Vec<_> = queries
            .iter()
            .map(|q| mds_to_mbr(&data.schema, q))
            .collect();
        let mut i = 0usize;
        g.bench_function(format!("dc_tree/{:.0}%", sel * 100.0), |b| {
            b.iter(|| {
                i += 1;
                dc.range_summary(&queries[i % queries.len()]).unwrap()
            })
        });
        let mut i = 0usize;
        g.bench_function(format!("x_tree/{:.0}%", sel * 100.0), |b| {
            b.iter(|| {
                i += 1;
                x.range_summary(&mbrs[i % mbrs.len()])
            })
        });
        let mut i = 0usize;
        g.bench_function(format!("seq_scan/{:.0}%", sel * 100.0), |b| {
            b.iter(|| {
                i += 1;
                scan.range_summary(&data.schema, &queries[i % queries.len()])
                    .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("delete");
    g.sample_size(20);
    let mut i = 0usize;
    g.bench_function("dc_tree", |b| {
        b.iter_batched(
            || {
                i += 1;
                (
                    mut_dc.clone(),
                    mut_data.records[i % mut_data.records.len()].clone(),
                )
            },
            |(mut tree, victim)| assert!(tree.delete(&victim).unwrap()),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_tree_ops
}
criterion_main!(benches);
