//! Criterion micro-benchmarks of the MDS algebra (Definition 4): the inner
//! loops of splits and queries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dc_common::{DimensionId, ValueId};
use dc_mds::{DimSet, Mds};
use dc_tpcd::{generate, TpcdConfig};

fn mds_of_width(data: &dc_tpcd::TpcdData, width: usize, offset: usize) -> Mds {
    let dims = (0..data.schema.num_dims())
        .map(|d| {
            let h = data.schema.dim(DimensionId(d as u16));
            let count = h.num_values_at(0);
            let take = width.min(count);
            let start = offset.min(count - take) as u32;
            DimSet::new(
                0,
                (start..start + take as u32)
                    .map(|i| ValueId::new(0, i))
                    .collect(),
            )
        })
        .collect();
    Mds::new(dims)
}

fn bench_mds_ops(c: &mut Criterion) {
    let data = generate(&TpcdConfig::scaled(20_000, 1));
    let small_a = mds_of_width(&data, 4, 0);
    let small_b = mds_of_width(&data, 4, 2);
    let large_a = mds_of_width(&data, 256, 0);
    let large_b = mds_of_width(&data, 256, 128);

    let mut g = c.benchmark_group("mds");
    g.bench_function("overlap/small", |b| b.iter(|| small_a.overlap(&small_b)));
    g.bench_function("overlap/large", |b| b.iter(|| large_a.overlap(&large_b)));
    g.bench_function("extension/large", |b| {
        b.iter(|| large_a.extension(&large_b))
    });
    g.bench_function("union_aligned/large", |b| {
        b.iter(|| large_a.union_aligned(&large_b))
    });
    g.bench_function("volume/large", |b| b.iter(|| large_a.volume()));
    g.bench_function("contained_in/large", |b| {
        b.iter(|| large_a.contained_in(&large_b, &data.schema).unwrap())
    });
    g.bench_function("adapt_to_levels/leaf_to_top", |b| {
        let levels: Vec<u8> = data.schema.dims().map(|h| h.top_level()).collect();
        b.iter(|| large_a.adapt_to_levels(&data.schema, &levels).unwrap())
    });
    g.bench_function("cover/mixed_levels", |b| {
        let coarse = Mds::all(&data.schema);
        b.iter(|| large_a.cover(&coarse, &data.schema).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("record");
    let record = data.records[0].clone();
    g.bench_function("contains_record", |b| {
        b.iter(|| large_a.contains_record(&data.schema, &record).unwrap())
    });
    g.bench_function("extend_to_cover_record", |b| {
        b.iter_batched(
            || large_a.clone(),
            |mut m| m.extend_to_cover_record(&data.schema, &record).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_mds_ops
}
criterion_main!(benches);
