//! Replica-vs-primary differential oracle.
//!
//! A primary takes a churn workload (interleaved inserts and deletes
//! across shards, with mid-stream checkpoints that GC its segments) while
//! a follower tails it over segment shipping. At every quiesce point the
//! follower is awaited via the wire-level `WAIT_LSN` barrier and then
//! **every dc-ql response string** — a selectivity × group-by matrix,
//! through the planner, plus `EXPLAIN` and `MIN_LSN`-prefixed reads —
//! must be bit-identical across three engines:
//!
//! * the sharded primary,
//! * the tailing follower (read-only, possibly resynced mid-run), and
//! * a monolithic single-shard oracle fed the same ops directly.
//!
//! Exactness is not statistical: measures are integers, so per-shard f64
//! summaries are exact and merge order cannot produce drift — any
//! response difference is a real replication or consistency bug. The
//! whole matrix repeats in [`StorageMode::Disk`], where checkpoint images
//! are paged shard files instead of serialized trees.

use std::sync::Arc;
use std::time::Duration;

use dctree::common::DimensionId;
use dctree::durable::WalEntry;
use dctree::hierarchy::CubeSchema;
use dctree::replica::{EngineSource, Follower, FollowerConfig};
use dctree::serve::protocol::handle_line;
use dctree::serve::{
    DiskOptions, EngineConfig, ShardedDcTree, StorageMode, SyncPolicy, WalOptions,
};
use dctree::tpcd::{generate, TpcdConfig, TpcdData};

const SHARDS: usize = 2;

/// Insert/delete churn with ~20% deletes, as WAL entries.
fn churn(data: &TpcdData, ops_total: usize) -> Vec<WalEntry> {
    let mut ops = Vec::with_capacity(ops_total);
    let mut live: Vec<usize> = Vec::new();
    let mut state = 0xD1FF_0A11u64;
    let mut next = |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    for i in 0..ops_total {
        let delete = !live.is_empty() && next(100) < 20;
        if delete {
            let idx = live.swap_remove(next(live.len() as u64) as usize);
            let r = &data.records[idx];
            ops.push(WalEntry::Delete {
                paths: data.paths_for(r),
                measure: r.measure,
            });
        } else {
            let idx = i % data.records.len();
            live.push(idx);
            let r = &data.records[idx];
            ops.push(WalEntry::Insert {
                paths: data.paths_for(r),
                measure: r.measure,
            });
        }
    }
    ops
}

fn apply_op(engine: &ShardedDcTree, op: &WalEntry) {
    match op {
        WalEntry::Insert { paths, measure } => engine.insert_raw(paths, *measure).unwrap(),
        WalEntry::Delete { paths, measure } => engine.delete_raw(paths, *measure).unwrap(),
    }
}

/// Quotes a value for dc-ql (embedded `'` doubled — TPC-D names have none,
/// but the printer contract is cheap to honour).
fn quote(v: &str) -> String {
    format!("'{}'", v.replace('\'', "''"))
}

/// The query matrix, rendered as protocol lines against the generator's
/// schema (which all three engines share, so every value resolves). At
/// early quiesce points many slices are empty — `NULL` renderings must be
/// bit-identical too.
fn query_matrix(schema: &CubeSchema) -> Vec<String> {
    let mut queries = Vec::new();
    for d in 0..schema.num_dims() {
        let dim = DimensionId(d as u16);
        let h = schema.dim(dim);
        let group_h = schema.dim(DimensionId(((d + 1) % schema.num_dims()) as u16));
        let group_by = format!(
            "GROUP BY {}.{}",
            group_h.schema().name(),
            group_h
                .schema()
                .attribute_name(group_h.top_level() - 1)
                .unwrap()
        );
        for level in 0..h.top_level() {
            let attr = h.schema().attribute_name(level).unwrap();
            let names: Vec<String> = h
                .values_at(level)
                .map(|id| h.name(id).unwrap().to_string())
                .collect();
            if names.is_empty() {
                continue;
            }
            // Three selectivities: one value, a handful, a broad slice.
            for k in [1usize, 3.min(names.len()), 8.min(names.len())] {
                let list: Vec<String> = names.iter().take(k).map(|n| quote(n)).collect();
                let cond = if k == 1 {
                    format!("{}.{} = {}", h.schema().name(), attr, list[0])
                } else {
                    format!("{}.{} IN ({})", h.schema().name(), attr, list.join(", "))
                };
                queries.push(format!("SELECT SUM, COUNT, MIN, MAX WHERE {cond}"));
                queries.push(format!("SELECT SUM, COUNT WHERE {cond} {group_by}"));
            }
        }
        // Unfiltered roll-up over this dimension's coarsest attribute.
        queries.push(format!(
            "SELECT SUM, COUNT, MIN, MAX GROUP BY {}.{}",
            h.schema().name(),
            h.schema().attribute_name(h.top_level() - 1).unwrap()
        ));
    }
    queries
}

fn engine_config(
    storage: StorageMode,
    num_shards: usize,
    wal_dir: Option<&std::path::Path>,
) -> EngineConfig {
    EngineConfig {
        num_shards,
        // The cache patches summaries by query history, which would make
        // EXPLAIN page counts depend on warm-up order; answers are the
        // subject here, so all three engines run uncached.
        cache: None,
        storage,
        wal: wal_dir.map(|dir| WalOptions {
            sync: SyncPolicy::Always,
            segment_bytes: 2048, // small segments: shipping crosses many
            checkpoint_every: 0,
            fs: None,
            ..WalOptions::new(dir)
        }),
        ..EngineConfig::default()
    }
}

/// Blocks (via the wire verb) until the follower's applied-and-visible
/// frontier reaches `lsn`; retries across mid-wait resync engine swaps.
fn await_follower(follower: &Follower, lsn: u64) -> Arc<ShardedDcTree> {
    for _ in 0..120 {
        let engine = follower.engine();
        let (resp, _) = handle_line(&engine, &format!("WAIT_LSN {lsn} 1000"));
        if resp.starts_with("OK APPLIED") {
            return engine;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("follower never reached lsn {lsn}");
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dc-repl-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the full churn + quiesce differential for one storage mode.
fn run_differential(disk: bool) {
    let (records, ops_total) = if disk { (500, 160) } else { (1200, 360) };
    let data = generate(&TpcdConfig::scaled(records, 13));
    let ops = churn(&data, ops_total);
    let queries = query_matrix(&data.schema);

    let tag = if disk { "disk" } else { "mem" };
    let primary_wal = temp_dir(&format!("{tag}-pwal"));
    let follower_wal = temp_dir(&format!("{tag}-fwal"));
    let primary_storage = temp_dir(&format!("{tag}-pstore"));
    let follower_storage = temp_dir(&format!("{tag}-fstore"));

    let storage = |dir: &std::path::Path| {
        if disk {
            StorageMode::Disk(DiskOptions::new(dir))
        } else {
            StorageMode::Resident
        }
    };
    // `data` is done after this point (ops and queries are pre-rendered),
    // so the schema moves out and only the two extra engines clone it.
    let schema = data.schema;
    let primary = Arc::new(
        ShardedDcTree::new(
            schema.clone(),
            engine_config(storage(&primary_storage), SHARDS, Some(&primary_wal)),
        )
        .unwrap(),
    );
    // The monolithic oracle: one shard, no WAL, fed the same ops directly.
    let oracle = ShardedDcTree::new(
        schema.clone(),
        engine_config(StorageMode::Resident, 1, None),
    )
    .unwrap();
    let follower = Arc::new(
        Follower::bootstrap(
            EngineSource(Arc::clone(&primary)),
            schema,
            FollowerConfig {
                poll_interval: Duration::from_millis(2),
                engine: engine_config(storage(&follower_storage), SHARDS, None),
                ..FollowerConfig::new(&follower_wal)
            },
        )
        .unwrap(),
    );
    follower.start_tailing();

    let quiesce_points = [ops.len() / 4, ops.len() / 2, 3 * ops.len() / 4, ops.len()];
    let checkpoints = [ops.len() / 3, 2 * ops.len() / 3];
    let mut done = 0usize;
    for &stop in &quiesce_points {
        for (i, op) in ops[done..stop].iter().enumerate() {
            apply_op(&primary, op);
            apply_op(&oracle, op);
            // Mid-stream checkpoints GC the primary's segments out from
            // under the follower — forcing the NeedCheckpoint/resync path
            // when the follower is far enough behind.
            if checkpoints.contains(&(done + i + 1)) {
                primary.checkpoint().unwrap();
            }
        }
        done = stop;
        primary.flush();
        oracle.flush();
        let lsn = primary.applied_lsn();
        assert_eq!(lsn, done as u64, "primary logged one LSN per op");
        let follower_engine = await_follower(&follower, lsn);
        assert_eq!(
            follower_engine.len(),
            primary.len(),
            "visible record counts"
        );
        for q in &queries {
            let (p, _) = handle_line(&primary, q);
            let (o, _) = handle_line(&oracle, q);
            let (f, _) = handle_line(&follower_engine, q);
            assert_eq!(p, o, "primary vs oracle diverged at op {done} on: {q}");
            assert_eq!(p, f, "primary vs follower diverged at op {done} on: {q}");
            // Read-your-LSN route: the same query prefixed with the
            // barrier must answer identically (the wait is a no-op now).
            let (g, _) = handle_line(&follower_engine, &format!("MIN_LSN {lsn} {q}"));
            assert_eq!(p, g, "MIN_LSN-prefixed read diverged at op {done} on: {q}");
        }
        if !disk {
            // EXPLAIN strings carry page counts priced off the buffer
            // pool's observed miss rate in disk mode (history-dependent);
            // resident plans are deterministic, so they must match
            // between the two sharded engines. (The oracle's differ
            // legitimately: one shard.)
            for q in queries.iter().take(40) {
                let line = format!("EXPLAIN {q}");
                let (p, _) = handle_line(&primary, &line);
                let (f, _) = handle_line(&follower_engine, &line);
                assert_eq!(p, f, "EXPLAIN diverged at op {done} on: {line}");
            }
        }
    }
    // A write against the follower must be refused, bit-identically to
    // the read-only contract in the docs.
    let (refused, _) = handle_line(&follower.engine(), "INSERT 5 EUROPE/GERMANY");
    assert!(
        refused.starts_with("ERR") && refused.contains("read-only follower"),
        "follower accepted a write: {refused}"
    );
    follower.stop_tailing();
    primary.shutdown();
    oracle.shutdown();
    for dir in [primary_wal, follower_wal, primary_storage, follower_storage] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn replication_differential_memory() {
    run_differential(false);
}

#[test]
fn replication_differential_disk() {
    run_differential(true);
}
