//! Batched-ingest differential: `insert_batch_raw` (the `INSERT_BATCH`
//! writer path — one WAL group, one shard command per batch) must leave a
//! [`ShardedDcTree`] in exactly the state a looped `insert_raw` stream
//! produces, in both storage modes, while readers hammer the engine
//! mid-ingest. Queries during ingest see epoch-consistent snapshots —
//! every partial answer must be a plausible prefix (0 ≤ count ≤ total,
//! summaries internally consistent), and the final answers must match the
//! record-at-a-time engine on every query.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use dctree::common::{AggregateOp, DimensionId};
use dctree::query::{RangeQueryGen, ValuePick};
use dctree::serve::{
    DiskOptions, EngineConfig, OocOptions, PartitionPolicy, ShardedDcTree, StorageMode,
};
use dctree::storage::BlockConfig;
use dctree::tpcd::{generate, TpcdConfig, TpcdData};
use dctree::Mds;

static SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dc-ingdiff-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_disk(tag: &str) -> StorageMode {
    StorageMode::Disk(DiskOptions {
        dir: temp_dir(tag),
        ooc: OocOptions {
            block: BlockConfig::new(512),
            frames: 16,
            compress: true,
        },
    })
}

fn engine(data: &TpcdData, storage: StorageMode) -> ShardedDcTree {
    let cfg = EngineConfig {
        num_shards: 4,
        policy: PartitionPolicy::Hash,
        storage,
        ..EngineConfig::default()
    };
    ShardedDcTree::new(data.schema.clone(), cfg).unwrap()
}

fn queries(data: &TpcdData) -> Vec<Mds> {
    let mut out = vec![Mds::all(&data.schema)];
    for (sel, seed) in [(0.01, 7), (0.05, 8), (0.25, 9)] {
        let mut gen = RangeQueryGen::new(sel, ValuePick::Scattered, seed);
        for _ in 0..10 {
            out.push(gen.generate(&data.schema));
        }
    }
    out
}

fn assert_engines_agree(batched: &ShardedDcTree, looped: &ShardedDcTree, data: &TpcdData) {
    assert_eq!(batched.len(), looped.len());
    assert_eq!(batched.total_summary(), looped.total_summary());
    for (qi, q) in queries(data).iter().enumerate() {
        assert_eq!(
            batched.range_summary(q).unwrap(),
            looped.range_summary(q).unwrap(),
            "summary mismatch on query {qi}"
        );
        for op in [AggregateOp::Sum, AggregateOp::Avg, AggregateOp::Min] {
            assert_eq!(
                batched.range_query(q, op).unwrap(),
                looped.range_query(q, op).unwrap(),
                "op {op:?} mismatch on query {qi}"
            );
        }
        for d in 0..data.schema.num_dims() {
            let dim = DimensionId(d as u16);
            assert_eq!(
                batched.group_by(dim, 1, q).unwrap(),
                looped.group_by(dim, 1, q).unwrap(),
                "group-by dim {d} mismatch on query {qi}"
            );
        }
    }
}

/// Ingests `data` into `target` through `insert_batch_raw` in uneven
/// chunks (1, 7, 64, 1, 7, 64, …) while reader threads run concurrent
/// queries, asserting each mid-flight answer is a consistent prefix.
fn batched_ingest_under_readers(target: &ShardedDcTree, data: &TpcdData) {
    let total = data.records.len() as u64;
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                let all = Mds::all(&data.schema);
                while !done.load(Ordering::Relaxed) {
                    let summary = target.range_summary(&all).unwrap();
                    let count = summary.count;
                    assert!(count <= total, "mid-ingest count {count} out of range");
                    if count > 0 {
                        // An epoch snapshot is internally consistent: avg
                        // derives from the same sum/count pair.
                        let sum = summary.eval(AggregateOp::Sum).unwrap();
                        let avg = summary.eval(AggregateOp::Avg).unwrap();
                        assert!((avg - sum / count as f64).abs() < 1e-6);
                    }
                    std::hint::spin_loop();
                }
            });
        }
        let mut i = 0;
        let mut sizes = [1usize, 7, 64].iter().cycle();
        while i < data.records.len() {
            let n = (*sizes.next().unwrap()).min(data.records.len() - i);
            let batch: Vec<_> = data.records[i..i + n]
                .iter()
                .map(|r| (data.paths_for(r), r.measure))
                .collect();
            target.insert_batch_raw(&batch).unwrap();
            i += n;
        }
        target.flush();
        done.store(true, Ordering::Relaxed);
    });
}

fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("{key} missing in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn resident_batched_ingest_matches_looped_inserts() {
    let data = generate(&TpcdConfig::scaled(2000, 71));
    let batched = engine(&data, StorageMode::Resident);
    batched_ingest_under_readers(&batched, &data);

    let looped = engine(&data, StorageMode::Resident);
    for r in &data.records {
        looped.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    looped.flush();

    assert_engines_agree(&batched, &looped, &data);

    // The batched path must actually have been exercised, and STATS must
    // account for every record exactly once.
    let stats = batched.stats_json();
    assert!(json_u64(&stats, "batches") > 0, "{stats}");
    assert_eq!(json_u64(&stats, "batch_records"), data.records.len() as u64);
    let looped_stats = looped.stats_json();
    assert_eq!(json_u64(&looped_stats, "batches"), 0);
}

#[test]
fn disk_batched_ingest_matches_looped_inserts() {
    let data = generate(&TpcdConfig::scaled(1200, 83));
    let batched = engine(&data, tiny_disk("batch"));
    batched_ingest_under_readers(&batched, &data);

    let looped = engine(&data, tiny_disk("loop"));
    for r in &data.records {
        looped.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    looped.flush();

    assert_engines_agree(&batched, &looped, &data);

    // Both shard sets really served from disk pages.
    let stats = batched.stats_json();
    assert!(stats.contains("\"buffer_pool\""));
    assert!(json_u64(&stats, "batches") > 0);
}

#[test]
fn batched_ingest_interleaves_with_deletes_and_single_inserts() {
    let data = generate(&TpcdConfig::scaled(900, 97));
    let mixed = engine(&data, StorageMode::Resident);
    let looped = engine(&data, StorageMode::Resident);

    // Mixed traffic: batches interleaved with single inserts and deletes,
    // against a pure record-at-a-time mirror of the same logical stream.
    let third = data.records.len() / 3;
    let batch: Vec<_> = data.records[..third]
        .iter()
        .map(|r| (data.paths_for(r), r.measure))
        .collect();
    mixed.insert_batch_raw(&batch).unwrap();
    for r in &data.records[third..2 * third] {
        mixed.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    for r in data.records[..third].iter().step_by(4) {
        mixed.delete_raw(&data.paths_for(r), r.measure).unwrap();
    }
    let batch: Vec<_> = data.records[2 * third..]
        .iter()
        .map(|r| (data.paths_for(r), r.measure))
        .collect();
    mixed.insert_batch_raw(&batch).unwrap();
    mixed.flush();

    for r in &data.records[..2 * third] {
        looped.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    for r in data.records[..third].iter().step_by(4) {
        looped.delete_raw(&data.paths_for(r), r.measure).unwrap();
    }
    for r in &data.records[2 * third..] {
        looped.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    looped.flush();

    assert_engines_agree(&mixed, &looped, &data);
}
