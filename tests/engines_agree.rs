//! Cross-engine integration tests: on identical TPC-D-style workloads the
//! DC-tree, the X-tree (via the MDS→MBR conversion) and the sequential scan
//! must produce *identical* answers — the property that makes the paper's
//! head-to-head timings meaningful.

use dctree::query::{mds_to_mbr, RangeQueryGen, ValuePick};
use dctree::scan::FlatTable;
use dctree::storage::BlockConfig;
use dctree::tpcd::{generate, TpcdConfig};
use dctree::xtree::{XTree, XTreeConfig};
use dctree::{AggregateOp, DcTree, DcTreeConfig, MeasureSummary};

struct Engines {
    data: dctree::tpcd::TpcdData,
    dc: DcTree,
    x: XTree,
    scan: FlatTable,
}

fn build_engines(lineitems: usize, seed: u64) -> Engines {
    let data = generate(&TpcdConfig::scaled(lineitems, seed));
    let mut dc = DcTree::new(
        data.schema.clone(),
        DcTreeConfig {
            dir_capacity: 8,
            data_capacity: 16,
            ..DcTreeConfig::default()
        },
    );
    let mut x = XTree::new(
        data.schema.num_flat_axes(),
        XTreeConfig {
            dir_capacity: 8,
            data_capacity: 16,
            ..XTreeConfig::default()
        },
    );
    let mut scan = FlatTable::for_schema(BlockConfig::DEFAULT, &data.schema);
    for r in &data.records {
        dc.insert(r.clone()).unwrap();
        x.insert(data.schema.flatten_record(r).unwrap(), r.measure);
        scan.insert(r.clone());
    }
    Engines { data, dc, x, scan }
}

#[test]
fn three_engines_agree_across_selectivities() {
    let e = build_engines(3000, 11);
    e.dc.check_invariants().unwrap();
    e.x.check_invariants().unwrap();
    for (sel, qseed) in [(0.01, 1u64), (0.05, 2), (0.25, 3)] {
        let mut gen = RangeQueryGen::new(sel, ValuePick::ContiguousRun, qseed);
        for _ in 0..40 {
            let q = gen.generate(&e.data.schema);
            let dc = e.dc.range_summary(&q).unwrap();
            let sc = e.scan.range_summary(&e.data.schema, &q).unwrap();
            let xm = e.x.range_summary(&mds_to_mbr(&e.data.schema, &q));
            assert_eq!(dc, sc, "DC-tree vs scan at selectivity {sel}");
            assert_eq!(dc, xm, "DC-tree vs X-tree at selectivity {sel}");
        }
    }
}

#[test]
fn scattered_queries_agree_between_dc_and_scan() {
    // Scattered value sets cannot be converted losslessly to MBRs, but the
    // DC-tree and the scan evaluate them natively.
    let e = build_engines(2000, 13);
    let mut gen = RangeQueryGen::new(0.10, ValuePick::Scattered, 5);
    for _ in 0..40 {
        let q = gen.generate(&e.data.schema);
        assert_eq!(
            e.dc.range_summary(&q).unwrap(),
            e.scan.range_summary(&e.data.schema, &q).unwrap()
        );
    }
}

#[test]
fn totals_agree() {
    let e = build_engines(1500, 17);
    let want: MeasureSummary = e.data.records.iter().map(|r| r.measure).collect();
    assert_eq!(e.dc.total_summary(), want);
    let all = dctree::Mds::all(&e.data.schema);
    assert_eq!(e.scan.range_summary(&e.data.schema, &all).unwrap(), want);
    assert_eq!(e.x.range_summary(&dctree::xtree::Mbr::universe(13)), want);
}

#[test]
fn dc_tree_reads_fewer_pages_than_scan_on_selective_queries() {
    // Paper-realistic capacities (the default config) and enough records
    // that the indexes have structure to exploit; at toy scale a scan's
    // denser record packing wins trivially.
    let data = generate(&TpcdConfig::scaled(12_000, 19));
    let mut dc = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    let mut scan = FlatTable::for_schema(BlockConfig::DEFAULT, &data.schema);
    for r in &data.records {
        dc.insert(r.clone()).unwrap();
        scan.insert(r.clone());
    }
    let mut gen = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 7);
    let mut dc_reads = 0u64;
    let mut scan_reads = 0u64;
    for _ in 0..20 {
        let q = gen.generate(&data.schema);
        dc.reset_io();
        scan.reset_io();
        let a = dc.range_summary(&q).unwrap();
        let b = scan.range_summary(&data.schema, &q).unwrap();
        assert_eq!(a, b);
        dc_reads += dc.io_stats().reads;
        scan_reads += scan.io_stats().reads;
    }
    assert!(
        dc_reads < scan_reads,
        "DC-tree must beat the scan in page reads ({dc_reads} vs {scan_reads})"
    );
}

#[test]
fn aggregate_operators_agree_everywhere() {
    let e = build_engines(1000, 23);
    let mut gen = RangeQueryGen::new(0.25, ValuePick::ContiguousRun, 9);
    for _ in 0..15 {
        let q = gen.generate(&e.data.schema);
        let want = e.scan.range_summary(&e.data.schema, &q).unwrap();
        for op in AggregateOp::ALL {
            assert_eq!(e.dc.range_query(&q, op).unwrap(), want.eval(op), "{op}");
            assert_eq!(
                e.x.range_summary(&mds_to_mbr(&e.data.schema, &q)).eval(op),
                want.eval(op),
                "{op}"
            );
        }
    }
}

#[test]
fn dc_tree_persistence_survives_tpcd_load() {
    let e = build_engines(1200, 29);
    let loaded = DcTree::from_bytes(&e.dc.to_bytes()).unwrap();
    let mut gen = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 10);
    for _ in 0..20 {
        let q = gen.generate(&e.data.schema);
        assert_eq!(
            loaded.range_summary(&q).unwrap(),
            e.dc.range_summary(&q).unwrap()
        );
    }
}

#[test]
fn deletion_keeps_engines_in_agreement() {
    let mut e = build_engines(800, 31);
    // Delete every third record from the DC-tree and from the oracle set.
    let mut remaining = Vec::new();
    for (i, r) in e.data.records.iter().enumerate() {
        if i % 3 == 0 {
            assert!(e.dc.delete(r).unwrap());
        } else {
            remaining.push(r.clone());
        }
    }
    e.dc.check_invariants().unwrap();
    let mut gen = RangeQueryGen::new(0.25, ValuePick::ContiguousRun, 12);
    for _ in 0..20 {
        let q = gen.generate(&e.data.schema);
        let want: MeasureSummary = remaining
            .iter()
            .filter(|r| q.contains_record(&e.data.schema, r).unwrap())
            .map(|r| r.measure)
            .collect();
        assert_eq!(e.dc.range_summary(&q).unwrap(), want);
    }
}

#[test]
fn group_by_agrees_with_scan_groups() {
    use dctree::DimensionId;
    let e = build_engines(1500, 37);
    let mut gen = RangeQueryGen::new(0.25, ValuePick::ContiguousRun, 14);
    for _ in 0..10 {
        let filter = gen.generate(&e.data.schema);
        for d in 0..e.data.schema.num_dims() {
            let dim = DimensionId(d as u16);
            let h = e.data.schema.dim(dim);
            for level in [0, h.top_level() - 1] {
                let groups = e.dc.group_by(dim, level, &filter).unwrap();
                // Scan oracle.
                let mut expected: std::collections::BTreeMap<dctree::ValueId, MeasureSummary> =
                    Default::default();
                for r in e.scan.iter() {
                    if filter.contains_record(&e.data.schema, r).unwrap() {
                        let key = h.ancestor_at(r.dims[d], level).unwrap();
                        expected.entry(key).or_default().add(r.measure);
                    }
                }
                let got: std::collections::BTreeMap<_, _> = groups.into_iter().collect();
                assert_eq!(got, expected);
            }
        }
    }
}

#[test]
fn bulk_loaded_tree_agrees_with_all_engines() {
    let e = build_engines(1500, 41);
    let mut bulk = DcTree::new(
        e.data.schema.clone(),
        DcTreeConfig {
            dir_capacity: 8,
            data_capacity: 16,
            ..DcTreeConfig::default()
        },
    );
    bulk.bulk_insert(e.data.records.clone()).unwrap();
    bulk.check_invariants().unwrap();
    let mut gen = RangeQueryGen::new(0.05, ValuePick::ContiguousRun, 15);
    for _ in 0..30 {
        let q = gen.generate(&e.data.schema);
        assert_eq!(
            bulk.range_summary(&q).unwrap(),
            e.dc.range_summary(&q).unwrap()
        );
    }
}
