//! Transport differential: the same dc-ql script must produce
//! **byte-identical** response sequences over every way of reaching the
//! engine —
//!
//! * newline text over the legacy threaded server,
//! * newline text over the reactor (autodetected compat codec),
//! * `DCB1` binary, one frame per round-trip,
//! * `DCB1` binary, the whole script pipelined in one write,
//!
//! with churn applied through the wire between rounds (mutations flow
//! through the binary codec's typed INSERT/DELETE/INSERT_BATCH payloads
//! and a text INSERT, `FLUSH` quiesces before each comparison), in both
//! [`StorageMode::Resident`] and [`StorageMode::Disk`]. Under the default
//! admission config the whole run must also be BUSY-free: a well-behaved
//! single-tenant workload never sees backpressure.
#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dctree::common::DimensionId;
use dctree::hierarchy::CubeSchema;
use dctree::serve::codec::{self, ResponseStep};
use dctree::serve::protocol::Request;
use dctree::serve::{
    serve, serve_reactor, DiskOptions, EngineConfig, ReactorConfig, ServerConfig, ShardedDcTree,
    StorageMode,
};
use dctree::tpcd::{generate, TpcdConfig, TpcdData};

struct TextClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TextClient {
    fn connect(addr: std::net::SocketAddr) -> TextClient {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        TextClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    }

    fn script(&mut self, lines: &[String]) -> Vec<String> {
        lines.iter().map(|l| self.request(l)).collect()
    }
}

struct BinClient {
    stream: TcpStream,
    inbox: Vec<u8>,
}

impl BinClient {
    fn connect(addr: std::net::SocketAddr) -> BinClient {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut c = BinClient {
            stream,
            inbox: Vec::new(),
        };
        c.stream.write_all(&codec::MAGIC).unwrap();
        c
    }

    /// Sends every request in ONE write (pipelined) and collects the
    /// responses in order.
    fn pipelined(&mut self, reqs: &[Request]) -> Vec<String> {
        let mut out = Vec::new();
        for r in reqs {
            codec::encode_request(r, &mut out);
        }
        self.stream.write_all(&out).unwrap();
        self.read_responses(reqs.len())
    }

    /// One frame per round-trip.
    fn one_by_one(&mut self, reqs: &[Request]) -> Vec<String> {
        reqs.iter()
            .flat_map(|r| self.pipelined(std::slice::from_ref(r)))
            .collect()
    }

    fn read_responses(&mut self, n: usize) -> Vec<String> {
        let mut responses = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            loop {
                match codec::decode_response(&self.inbox) {
                    ResponseStep::Incomplete => break,
                    ResponseStep::Frame {
                        consumed,
                        status,
                        response,
                    } => {
                        self.inbox.drain(..consumed);
                        assert_eq!(status, codec::status_of(&response));
                        responses.push(response);
                        if responses.len() == n {
                            return responses;
                        }
                    }
                    other => panic!("{other:?}"),
                }
            }
            let got = self.stream.read(&mut chunk).unwrap();
            assert!(got > 0, "server closed after {} responses", responses.len());
            self.inbox.extend_from_slice(&chunk[..got]);
        }
    }
}

/// The read-only script, rendered as protocol lines (the binary transport
/// wraps each line in an opcode-0x0A Query frame carrying the identical
/// text, so responses are comparable byte for byte).
fn query_script(schema: &CubeSchema) -> Vec<String> {
    let mut lines = vec!["COUNT".to_string(), "SUM".to_string()];
    for d in 0..schema.num_dims() {
        let dim = DimensionId(d as u16);
        let h = schema.dim(dim);
        let group_h = schema.dim(DimensionId(((d + 1) % schema.num_dims()) as u16));
        let group_by = format!(
            "GROUP BY {}.{}",
            group_h.schema().name(),
            group_h
                .schema()
                .attribute_name(group_h.top_level() - 1)
                .unwrap()
        );
        let level = h.top_level() - 1;
        let attr = h.schema().attribute_name(level).unwrap();
        let names: Vec<String> = h
            .values_at(level)
            .map(|id| h.name(id).unwrap().to_string())
            .collect();
        if names.is_empty() {
            continue;
        }
        for k in [1usize, 4.min(names.len())] {
            let list: Vec<String> = names
                .iter()
                .take(k)
                .map(|n| format!("'{}'", n.replace('\'', "''")))
                .collect();
            let cond = if k == 1 {
                format!("{}.{} = {}", h.schema().name(), attr, list[0])
            } else {
                format!("{}.{} IN ({})", h.schema().name(), attr, list.join(", "))
            };
            lines.push(format!("SELECT SUM, COUNT, MIN, MAX WHERE {cond}"));
            lines.push(format!("SELECT SUM, COUNT WHERE {cond} {group_by}"));
        }
        lines.push(format!(
            "SELECT SUM, COUNT, MIN, MAX GROUP BY {}.{}",
            h.schema().name(),
            attr
        ));
        lines.push(format!(
            "EXPLAIN SUM GROUP BY {}.{}",
            h.schema().name(),
            attr
        ));
    }
    lines
}

fn as_query_frames(lines: &[String]) -> Vec<Request> {
    lines
        .iter()
        .map(|l| Request::Query { text: l.clone() })
        .collect()
}

fn paths_line(paths: &[Vec<String>]) -> String {
    paths
        .iter()
        .map(|dim| dim.join("/"))
        .collect::<Vec<_>>()
        .join("|")
}

fn run_mode(storage: StorageMode, tag: &str) {
    let data: TpcdData = generate(&TpcdConfig::scaled(800, 4242));
    let engine = Arc::new(
        ShardedDcTree::new(
            data.schema.clone(),
            EngineConfig {
                num_shards: 2,
                // The cache patches summaries by query history; answers
                // must not depend on which transport warmed it first.
                cache: None,
                storage,
                ..EngineConfig::default()
            },
        )
        .unwrap(),
    );
    for r in data.records.iter().take(400) {
        engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    engine.flush();

    // Both front-ends serve the same engine.
    let reactor =
        serve_reactor(Arc::clone(&engine), "127.0.0.1:0", ReactorConfig::default()).unwrap();
    let legacy = serve(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            poll_interval: Duration::from_millis(5),
            ..Default::default()
        },
    )
    .unwrap();

    let mut text_reactor = TextClient::connect(reactor.local_addr());
    let mut text_legacy = TextClient::connect(legacy.local_addr());
    let mut bin_single = BinClient::connect(reactor.local_addr());
    let mut bin_pipelined = BinClient::connect(reactor.local_addr());

    let script = query_script(&data.schema);
    let frames = as_query_frames(&script);
    let mut cursor = 400usize;
    for round in 0..3 {
        // Churn through the wire: typed binary mutations (single, batch,
        // delete) plus one text INSERT, then quiesce with FLUSH so every
        // transport reads the same published snapshot.
        let burst: Vec<_> = data.records[cursor..cursor + 60].iter().collect();
        cursor += 60;
        let mut churn: Vec<Request> = Vec::new();
        for r in &burst[..20] {
            churn.push(Request::Insert {
                measure: r.measure,
                paths: data.paths_for(r),
            });
        }
        churn.push(Request::InsertBatch {
            records: burst[20..50]
                .iter()
                .map(|r| (data.paths_for(r), r.measure))
                .collect(),
        });
        // Delete a third of what this round inserted.
        for r in &burst[..10] {
            churn.push(Request::Delete {
                measure: r.measure,
                paths: data.paths_for(r),
            });
        }
        let churn_responses = bin_pipelined.pipelined(&churn);
        for resp in &churn_responses {
            assert!(resp.starts_with("OK"), "round {round}: {resp}");
        }
        let text_insert = &burst[50];
        let resp = text_reactor.request(&format!(
            "INSERT {} {}",
            text_insert.measure,
            paths_line(&data.paths_for(text_insert))
        ));
        assert_eq!(resp, "OK INSERTED");
        assert_eq!(text_legacy.request("FLUSH"), "OK FLUSHED");

        // The identical script over all four transports.
        let a = text_reactor.script(&script);
        let b = text_legacy.script(&script);
        let c = bin_single.one_by_one(&frames);
        let d = bin_pipelined.pipelined(&frames);
        for i in 0..script.len() {
            assert_eq!(
                a[i], b[i],
                "{tag} round {round}: reactor text vs legacy text on {:?}",
                script[i]
            );
            assert_eq!(
                a[i], c[i],
                "{tag} round {round}: text vs binary on {:?}",
                script[i]
            );
            assert_eq!(
                a[i], d[i],
                "{tag} round {round}: text vs pipelined binary on {:?}",
                script[i]
            );
            // Default admission: a polite workload never sheds.
            assert!(!a[i].starts_with("BUSY"), "{}", a[i]);
        }
    }

    reactor.stop();
    legacy.stop();
    engine.shutdown();
}

#[test]
fn transports_agree_resident() {
    run_mode(StorageMode::Resident, "resident");
}

#[test]
fn transports_agree_disk() {
    let dir = std::env::temp_dir().join(format!("dc-net-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    run_mode(StorageMode::Disk(DiskOptions::new(&dir)), "disk");
    let _ = std::fs::remove_dir_all(&dir);
}
