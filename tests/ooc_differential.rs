//! Disk-backed engine differential: a [`ShardedDcTree`] in
//! [`StorageMode::Disk`] — shards served from compressed pages through
//! `dc-oocore`'s buffer pool, with a frame budget far below the working
//! set so every query path faults and evicts — must answer every query
//! exactly like the RAM-resident engine over the same records. Pinned
//! across a selectivity × group-by matrix, through delete churn, via the
//! planned `execute`/`explain` entry points, and across a WAL
//! checkpoint → restart → recovery cycle.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dctree::common::{AggregateOp, DimensionId};
use dctree::plan::Backend;
use dctree::ql::ParsedStatement;
use dctree::query::{RangeQueryGen, ValuePick};
use dctree::serve::{
    DiskOptions, EngineConfig, OocOptions, PartitionPolicy, PlannerOptions, ShardedDcTree,
    StorageMode, SyncPolicy, WalOptions,
};
use dctree::storage::BlockConfig;
use dctree::tpcd::{generate, TpcdConfig, TpcdData};
use dctree::Mds;

static SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dc-oocdiff-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Disk storage with a deliberately tiny per-shard frame budget: the
/// working set cannot stay resident, so the equivalence below is served
/// through real faults, evictions, and write-backs.
fn tiny_disk(tag: &str) -> StorageMode {
    StorageMode::Disk(DiskOptions {
        dir: temp_dir(tag),
        ooc: OocOptions {
            block: BlockConfig::new(512),
            frames: 16,
            compress: true,
        },
    })
}

fn config(storage: StorageMode) -> EngineConfig {
    EngineConfig {
        num_shards: 4,
        policy: PartitionPolicy::Hash,
        storage,
        ..EngineConfig::default()
    }
}

fn build(data: &TpcdData, storage: StorageMode) -> ShardedDcTree {
    let engine = ShardedDcTree::new(data.schema.clone(), config(storage)).unwrap();
    for r in &data.records {
        engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    engine.flush();
    engine
}

/// Queries across the paper's selectivity spectrum.
fn queries(data: &TpcdData) -> Vec<Mds> {
    let mut out = vec![Mds::all(&data.schema)];
    for (sel, seed) in [(0.01, 3), (0.05, 4), (0.25, 5)] {
        let mut gen = RangeQueryGen::new(sel, ValuePick::Scattered, seed);
        for _ in 0..12 {
            out.push(gen.generate(&data.schema));
        }
    }
    out
}

fn assert_engines_agree(disk: &ShardedDcTree, ram: &ShardedDcTree, data: &TpcdData) {
    assert_eq!(disk.len(), ram.len());
    assert_eq!(disk.total_summary(), ram.total_summary());
    for (qi, q) in queries(data).iter().enumerate() {
        assert_eq!(
            disk.range_summary(q).unwrap(),
            ram.range_summary(q).unwrap(),
            "summary mismatch on query {qi}"
        );
        for op in [AggregateOp::Sum, AggregateOp::Avg, AggregateOp::Min] {
            assert_eq!(
                disk.range_query(q, op).unwrap(),
                ram.range_query(q, op).unwrap(),
                "op {op:?} mismatch on query {qi}"
            );
        }
        for d in 0..data.schema.num_dims() {
            let dim = DimensionId(d as u16);
            assert_eq!(
                disk.group_by(dim, 1, q).unwrap(),
                ram.group_by(dim, 1, q).unwrap(),
                "group-by dim {d} mismatch on query {qi}"
            );
        }
    }
}

/// Pulls an integer gauge out of the hand-rolled STATS JSON.
fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("{key} missing in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn disk_engine_matches_resident_engine_through_churn() {
    let data = generate(&TpcdConfig::scaled(2000, 17));
    let disk = build(&data, tiny_disk("churn"));
    let ram = build(&data, StorageMode::Resident);
    assert!(disk.is_disk() && !ram.is_disk());
    assert_engines_agree(&disk, &ram, &data);

    // The RAM engine's STATS has no buffer_pool section; the disk one
    // must show real evictions — proof the equivalence above ran
    // out-of-core, not from a fully resident pool.
    let ram_stats = ram.stats_json();
    assert!(!ram_stats.contains("\"buffer_pool\""));
    let disk_stats = disk.stats_json();
    assert!(disk_stats.contains("\"buffer_pool\""));
    assert!(json_u64(&disk_stats, "pool_evictions") > 0, "{disk_stats}");
    assert!(json_u64(&disk_stats, "pool_misses") > 0);

    // Churn: delete a third of the records from both, verify, reinsert.
    for r in data.records.iter().step_by(3) {
        let paths = data.paths_for(r);
        disk.delete_raw(&paths, r.measure).unwrap();
        ram.delete_raw(&paths, r.measure).unwrap();
    }
    disk.flush();
    ram.flush();
    assert_engines_agree(&disk, &ram, &data);

    for r in data.records.iter().step_by(3) {
        let paths = data.paths_for(r);
        disk.insert_raw(&paths, r.measure).unwrap();
        ram.insert_raw(&paths, r.measure).unwrap();
    }
    disk.flush();
    ram.flush();
    assert_engines_agree(&disk, &ram, &data);
}

#[test]
fn planned_queries_agree_and_explain_prices_pool_touches() {
    let data = generate(&TpcdConfig::scaled(1200, 29));
    let disk = build(&data, tiny_disk("plan"));
    let ram = build(&data, StorageMode::Resident);

    let mut gen = RangeQueryGen::new(0.1, ValuePick::Scattered, 41);
    for i in 0..8 {
        let filter = gen.generate(&data.schema);
        let group_by = (i % 2 == 0).then_some((DimensionId(0), 1));
        let stmt = ParsedStatement {
            ops: vec![AggregateOp::Sum, AggregateOp::Count],
            filter,
            group_by,
            top: None,
            joins: Vec::new(),
        };
        assert_eq!(
            disk.execute(&stmt).unwrap(),
            ram.execute(&stmt).unwrap(),
            "planned execute mismatch on statement {i}"
        );
        let (out, explain) = disk.explain(&stmt).unwrap();
        assert_eq!(out, ram.execute(&stmt).unwrap());
        assert_eq!(explain.backend, Backend::Descend);
        assert!(
            explain.est_pages > 0.0,
            "cold-priced descent estimate must be positive"
        );
        // Disk shards maintain no other backend to force.
        assert!(disk.execute_forced(&stmt, Backend::Scan).is_err());
        let cmp = disk.compare_backends(&stmt).unwrap();
        assert_eq!(cmp.outputs.len(), 1);
        assert_eq!(cmp.chosen, out);
    }
}

#[test]
fn disk_mode_rejects_planner_engines() {
    let data = generate(&TpcdConfig::scaled(50, 1));
    let err = ShardedDcTree::new(
        data.schema,
        EngineConfig {
            planner: Some(PlannerOptions::default()),
            ..config(tiny_disk("reject"))
        },
    );
    assert!(err.is_err());
}

#[test]
fn disk_engine_recovers_from_checkpoint_and_wal_tail() {
    let data = generate(&TpcdConfig::scaled(900, 53));
    let wal_dir = temp_dir("wal");
    let disk_dir = temp_dir("waldisk");
    let storage = || {
        StorageMode::Disk(DiskOptions {
            dir: disk_dir.clone(),
            ooc: OocOptions {
                block: BlockConfig::new(512),
                frames: 16,
                compress: true,
            },
        })
    };
    let cfg = || EngineConfig {
        wal: Some(WalOptions {
            sync: SyncPolicy::Always,
            ..WalOptions::new(&wal_dir)
        }),
        ..config(storage())
    };

    let half = data.records.len() / 2;
    {
        let engine = ShardedDcTree::new(data.schema.clone(), cfg()).unwrap();
        for r in &data.records[..half] {
            engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
        }
        // A little pre-checkpoint churn so images carry delete effects.
        for r in data.records[..half].iter().step_by(5) {
            engine.delete_raw(&data.paths_for(r), r.measure).unwrap();
        }
        engine.flush();
        engine.checkpoint().unwrap();
        // Tail beyond the checkpoint, replayed from segments on reopen.
        for r in &data.records[half..] {
            engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
        }
        engine.flush();
    }

    let reopened = ShardedDcTree::new(data.schema.clone(), cfg()).unwrap();
    let ram = ShardedDcTree::new(data.schema.clone(), config(StorageMode::Resident)).unwrap();
    for r in &data.records[..half] {
        ram.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    for r in data.records[..half].iter().step_by(5) {
        ram.delete_raw(&data.paths_for(r), r.measure).unwrap();
    }
    for r in &data.records[half..] {
        ram.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    ram.flush();
    assert_engines_agree(&reopened, &ram, &data);
}
