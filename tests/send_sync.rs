//! Compile-time thread-safety assertions: the engine's whole design rests
//! on moving owned `DcTree`s into writer threads and sharing the engine
//! across connection threads. If a future change smuggles an `Rc`/`RefCell`
//! into the tree, this file stops compiling — long before any runtime race.

use dctree::{ConcurrentDcTree, DcTree, ShardedDcTree};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn tree_and_engine_are_thread_safe() {
    // A DcTree must be movable into a shard writer thread.
    assert_send::<DcTree>();
    // Snapshots are shared across query threads as Arc<DcTree>.
    assert_sync::<DcTree>();
    // The engine itself is shared across connection handler threads.
    assert_send::<ShardedDcTree>();
    assert_sync::<ShardedDcTree>();
    assert_send::<ConcurrentDcTree>();
    assert_sync::<ConcurrentDcTree>();
}
