//! Engine-level crash/fault differential harness.
//!
//! Drives a sharded, WAL-backed [`ShardedDcTree`] through a deterministic
//! workload on a [`FaultFs`] that crashes at planned byte offsets, fails
//! fsyncs, or flips bits — then reopens the directory on the real
//! filesystem and asserts the recovered engine is exactly some prefix of
//! the workload:
//!
//! * **No acked-synced write is lost**: `synced ≤ P` where `P` is the
//!   recovered prefix (`recovery_checkpoint_lsn + recovery_replayed_entries`).
//! * **No invented writes**: `P ≤ attempted` (with one op of slack when the
//!   run died mid-op: an entry can hit the disk and then fail its fsync or
//!   its auto-checkpoint, so the caller saw `Err` but recovery may keep it).
//! * **Exact prefix semantics**: every aggregate answer from the recovered
//!   engine equals a never-crashed monolith fed the same first `P` ops.
//!
//! The dense byte-offset sweep lives in `crates/durable/tests/fault_points.rs`;
//! this harness covers the full engine path — sharding, the catalog catch-up
//! barrier, checkpoint images, and recovery through `ShardedDcTree::new`.

use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

use dc_durable::{apply, FaultFs, FaultPlan, SyncPolicy, WalEntry};
use dc_query::{RangeQueryGen, ValuePick};
use dc_serve::{EngineConfig, ShardedDcTree, WalOptions};
use dc_tpcd::{generate, TpcdConfig, TpcdData};
use dc_tree::{DcTree, DcTreeConfig};

const OPS: usize = 120;
const SHARDS: usize = 2;

fn tpcd() -> TpcdData {
    generate(&TpcdConfig::scaled(600, 7))
}

/// One logged mutation, expressed as the WAL entry it should produce so the
/// oracle replays through exactly the same code path as recovery.
fn workload(data: &TpcdData) -> Vec<WalEntry> {
    let mut ops = Vec::with_capacity(OPS);
    let mut live: Vec<usize> = Vec::new();
    let mut state = 0xFA17_C0DEu64;
    let mut next = |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    for i in 0..OPS {
        let delete = !live.is_empty() && next(100) < 15;
        if delete {
            let idx = live.swap_remove(next(live.len() as u64) as usize);
            let r = &data.records[idx];
            ops.push(WalEntry::Delete {
                paths: data.paths_for(r),
                measure: r.measure,
            });
        } else {
            let idx = i % data.records.len();
            live.push(idx);
            let r = &data.records[idx];
            ops.push(WalEntry::Insert {
                paths: data.paths_for(r),
                measure: r.measure,
            });
        }
    }
    ops
}

/// A monolithic `DcTree` fed the first `prefix` ops.
fn oracle(data: &TpcdData, ops: &[WalEntry], prefix: usize) -> DcTree {
    let mut tree = DcTree::new(data.schema.clone(), DcTreeConfig::default());
    for op in &ops[..prefix] {
        apply(&mut tree, op).unwrap();
    }
    tree
}

fn config(
    dir: &PathBuf,
    fs: Option<Arc<dyn dc_serve::WalFs>>,
    checkpoint_every: u64,
) -> EngineConfig {
    EngineConfig {
        num_shards: SHARDS,
        wal: Some(WalOptions {
            sync: SyncPolicy::Always,
            segment_bytes: 1024,
            checkpoint_every,
            fs,
            ..WalOptions::new(dir)
        }),
        ..EngineConfig::default()
    }
}

fn apply_to_engine(engine: &ShardedDcTree, op: &WalEntry) -> dc_common::DcResult<()> {
    match op {
        WalEntry::Insert { paths, measure } => engine.insert_raw(paths, *measure),
        WalEntry::Delete { paths, measure } => engine.delete_raw(paths, *measure),
    }
}

/// Runs the workload on `fs` until an injected fault surfaces (or the ops run
/// out). Returns `(attempted, synced)`: an upper bound on recoverable ops and
/// the durable lower bound read from the engine's gauges.
fn run_until_fault(
    dir: &PathBuf,
    data: &TpcdData,
    ops: &[WalEntry],
    fs: &FaultFs,
    checkpoint_every: u64,
) -> (u64, u64) {
    let cfg = config(dir, Some(Arc::new(fs.clone())), checkpoint_every);
    let engine = match ShardedDcTree::new(data.schema.clone(), cfg) {
        Ok(engine) => engine,
        Err(_) => return (0, 0), // crashed while opening the WAL
    };
    let mut ok = 0u64;
    let mut died = false;
    for op in ops {
        match apply_to_engine(&engine, op) {
            Ok(()) => ok += 1,
            Err(_) => {
                died = true;
                break;
            }
        }
    }
    let synced = engine.metrics().durability.wal_synced_lsn.load(Relaxed);
    // An op that returned `Err` can still have landed its WAL frame (its
    // fsync or its auto-checkpoint failed after the write), so recovery may
    // legitimately keep one more entry than we counted acks for.
    let attempted = ok + u64::from(died);
    drop(engine); // shutdown tolerates the dead filesystem
    (attempted, synced)
}

/// Reopens `dir` on the real filesystem and differentially checks the
/// recovered engine against the oracle prefix. Returns the prefix `P`.
fn check_recovery(
    dir: &PathBuf,
    data: &TpcdData,
    ops: &[WalEntry],
    attempted: u64,
    synced: u64,
) -> u64 {
    let engine = ShardedDcTree::new(data.schema.clone(), config(dir, None, 0))
        .expect("recovery on a clean filesystem must succeed");
    let d = &engine.metrics().durability;
    let ckpt = d.recovery_checkpoint_lsn.load(Relaxed);
    let replayed = d.recovery_replayed_entries.load(Relaxed);
    let p = ckpt + replayed;
    assert!(
        synced <= p,
        "lost a synced-acked write: synced={synced} recovered={p} (ckpt={ckpt} replayed={replayed})"
    );
    assert!(
        p <= attempted,
        "recovered more than was attempted: recovered={p} attempted={attempted}"
    );
    let mono = oracle(data, ops, p as usize);
    assert_eq!(engine.len(), mono.len(), "len mismatch at prefix {p}");
    assert_eq!(engine.total_summary(), mono.total_summary());
    let mut gen = RangeQueryGen::new(0.1, ValuePick::Scattered, 29);
    for _ in 0..15 {
        let q = gen.generate(&data.schema);
        assert_eq!(
            engine.range_summary(&q).unwrap(),
            mono.range_summary(&q).unwrap(),
            "answer mismatch at prefix {p} for {q:?}"
        );
    }
    drop(engine);
    p
}

fn temp_dir(tag: &str, n: u64) -> PathBuf {
    std::env::temp_dir().join(format!("dc-crash-{tag}-{}-{n}", std::process::id()))
}

/// Total segment-file traffic for a fault-free run, used to place crashes.
fn total_wal_bytes(data: &TpcdData, ops: &[WalEntry]) -> u64 {
    let dir = temp_dir("dry", 0);
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FaultFs::new(FaultPlan::default());
    let (attempted, synced) = run_until_fault(&dir, data, ops, &fs, 0);
    assert_eq!(attempted, ops.len() as u64);
    assert_eq!(synced, ops.len() as u64);
    let bytes = fs.written();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(bytes > 2048, "workload too small to exercise rotation");
    bytes
}

#[test]
fn engine_crash_sweep_over_byte_offsets() {
    let data = tpcd();
    let ops = workload(&data);
    let total = total_wal_bytes(&data, &ops);
    for i in 1..=8u64 {
        let offset = total * i / 9 + i % 3; // stride plus a little phase jitter
        let dir = temp_dir("sweep", offset);
        let _ = std::fs::remove_dir_all(&dir);
        let fs = FaultFs::new(FaultPlan {
            crash_after_bytes: Some(offset),
            ..FaultPlan::default()
        });
        let (attempted, synced) = run_until_fault(&dir, &data, &ops, &fs, 0);
        assert!(fs.crashed(), "crash at byte {offset} never fired");
        check_recovery(&dir, &data, &ops, attempted, synced);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn engine_crash_sweep_with_checkpoints_bounds_replay() {
    let data = tpcd();
    let ops = workload(&data);
    let total = total_wal_bytes(&data, &ops);
    for i in 5..=8u64 {
        let offset = total * i / 9;
        let dir = temp_dir("ckpt", offset);
        let _ = std::fs::remove_dir_all(&dir);
        let fs = FaultFs::new(FaultPlan {
            crash_after_bytes: Some(offset),
            ..FaultPlan::default()
        });
        let (attempted, synced) = run_until_fault(&dir, &data, &ops, &fs, 30);
        let engine = ShardedDcTree::new(data.schema.clone(), config(&dir, None, 0)).unwrap();
        let d = &engine.metrics().durability;
        assert!(
            d.recovery_checkpoint_lsn.load(Relaxed) > 0,
            "back-half crash at {offset} should land after a checkpoint"
        );
        assert!(d.recovery_replayed_entries.load(Relaxed) < attempted);
        drop(engine);
        check_recovery(&dir, &data, &ops, attempted, synced);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn engine_failed_fsyncs_never_lose_synced_writes() {
    let data = tpcd();
    let ops = workload(&data);
    for nth in [1u64, 3, 7, 40] {
        let dir = temp_dir("fsync", nth);
        let _ = std::fs::remove_dir_all(&dir);
        let fs = FaultFs::new(FaultPlan {
            fail_sync: Some(nth),
            ..FaultPlan::default()
        });
        let (attempted, synced) = run_until_fault(&dir, &data, &ops, &fs, 0);
        assert!(fs.crashed(), "fsync fault #{nth} never fired");
        check_recovery(&dir, &data, &ops, attempted, synced);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn engine_bit_flips_recover_to_a_clean_prefix() {
    let data = tpcd();
    let ops = workload(&data);
    let total = total_wal_bytes(&data, &ops);
    for i in [2u64, 4, 6] {
        let offset = total * i / 9;
        let dir = temp_dir("flip", offset);
        let _ = std::fs::remove_dir_all(&dir);
        let fs = FaultFs::new(FaultPlan {
            flip_bit: Some((offset, 0x10)),
            ..FaultPlan::default()
        });
        // A bit flip is silent — the whole workload runs and every append is
        // acked, but the corrupted frame cannot be promised back: recovery
        // stops at the last frame whose CRC still holds. So the durable lower
        // bound here is 0, and the differential prefix check is the teeth.
        let (attempted, _synced) = run_until_fault(&dir, &data, &ops, &fs, 0);
        assert!(!fs.crashed());
        assert_eq!(attempted, ops.len() as u64);
        let p = check_recovery(&dir, &data, &ops, attempted, 0);
        assert!(
            p < attempted,
            "flip at byte {offset} went undetected: recovered all {attempted} ops"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn rejected_writes_never_poison_the_wal() {
    // A mutation the catalog rejects (wrong dimension count, wrong path
    // depth) must leave the WAL untouched: the caller already saw an Err,
    // and recovery replays the log verbatim — a logged rejection would turn
    // one bad client request into a directory that can never be reopened.
    let data = tpcd();
    let dir = temp_dir("reject", 0);
    let _ = std::fs::remove_dir_all(&dir);

    let good: Vec<_> = data.records[..40]
        .iter()
        .map(|r| (data.paths_for(r), r.measure))
        .collect();
    let expected_total;
    {
        let engine = ShardedDcTree::new(data.schema.clone(), config(&dir, None, 0)).unwrap();
        engine.insert_batch_raw(&good[..20]).unwrap();

        // Wrong dimension count, single insert and delete.
        let two_dims = vec![vec!["EUROPE".to_string()], vec!["1999".to_string()]];
        assert!(engine.insert_raw(&two_dims, 5).is_err());
        assert!(engine.delete_raw(&two_dims, 5).is_err());
        // Wrong path depth within one dimension.
        let mut shallow = data.paths_for(&data.records[0]);
        shallow[0].pop();
        assert!(engine.insert_raw(&shallow, 5).is_err());
        // A batch with one malformed record is rejected whole.
        let mut batch = good[20..30].to_vec();
        batch.push((two_dims, 7));
        assert!(engine.insert_batch_raw(&batch).is_err());

        engine.insert_batch_raw(&good[20..]).unwrap();
        engine.flush();
        assert_eq!(engine.len(), good.len() as u64);
        expected_total = engine.total_summary();
    }

    // Reopen: recovery must replay only the accepted writes.
    let reopened = ShardedDcTree::new(data.schema, config(&dir, None, 0))
        .expect("recovery failed: a rejected write reached the WAL");
    assert_eq!(reopened.len(), good.len() as u64);
    assert_eq!(reopened.total_summary(), expected_total);
    let _ = std::fs::remove_dir_all(&dir);
}
