//! The streaming-updates scenario, promoted from `examples/streaming_updates`
//! into a checked integration test and pointed at the sharded engine:
//! several writer threads firehose trades into a [`ShardedDcTree`] while
//! reader threads continuously query the live snapshots; afterwards the
//! engine must hold exactly what a sequential replay into a plain [`DcTree`]
//! holds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dctree::serve::{EngineConfig, PartitionPolicy};
use dctree::{
    AggregateOp, CubeSchema, DcTree, DcTreeConfig, DimSet, DimensionId, HierarchySchema, Mds,
    ShardedDcTree,
};
use rand::prelude::*;
use rand::rngs::StdRng;

const SECTORS: [&str; 5] = ["TECH", "ENERGY", "FINANCE", "HEALTH", "RETAIL"];
const VENUES: [&str; 3] = ["NYSE", "NASDAQ", "LSE"];

fn ticker_schema() -> CubeSchema {
    CubeSchema::new(
        vec![
            HierarchySchema::new("Instrument", vec!["Sector".into(), "Symbol".into()]),
            HierarchySchema::new("Venue", vec!["Venue".into()]),
            HierarchySchema::new("Time", vec!["Hour".into(), "Minute".into()]),
        ],
        "TradeValue",
    )
}

/// One deterministic trade per (writer, sequence) pair.
fn trade(rng: &mut StdRng) -> (Vec<Vec<String>>, i64) {
    let sector = SECTORS[rng.gen_range(0usize..SECTORS.len())];
    let symbol = format!("{sector}-{:03}", rng.gen_range(0u32..120));
    let venue = VENUES[rng.gen_range(0usize..VENUES.len())];
    let hour = format!("{:02}", rng.gen_range(9u32..17));
    let minute = format!("{hour}:{:02}", rng.gen_range(0u32..60));
    let value = rng.gen_range(1_000i64..5_000_000);
    (
        vec![
            vec![sector.to_string(), symbol],
            vec![venue.to_string()],
            vec![hour, minute],
        ],
        value,
    )
}

#[test]
fn writers_and_readers_race_then_agree_with_sequential_replay() {
    const WRITERS: usize = 4;
    const READERS: usize = 2;
    const TRADES_PER_WRITER: usize = 1_500;

    let engine = Arc::new(ShardedDcTree::new(ticker_schema(), EngineConfig::default()).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let queries_run = Arc::new(AtomicU64::new(0));

    // Readers: roll up one sector while trades stream in. Answers race the
    // writers, so only invariants are checked here — never a fixed value.
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let queries_run = Arc::clone(&queries_run);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + r as u64);
                while !stop.load(Ordering::Relaxed) {
                    let q = {
                        let schema = engine.schema();
                        let inst = schema.dim(DimensionId(0));
                        let sectors: Vec<_> = inst.values_at(1).collect();
                        let sector = if sectors.is_empty() {
                            inst.all()
                        } else {
                            sectors[rng.gen_range(0usize..sectors.len())]
                        };
                        Mds::new(vec![
                            DimSet::singleton(sector),
                            DimSet::singleton(schema.dim(DimensionId(1)).all()),
                            DimSet::singleton(schema.dim(DimensionId(2)).all()),
                        ])
                    };
                    let summary = engine.range_summary(&q).expect("query");
                    if summary.count > 0 {
                        assert!(summary.min <= summary.max);
                        assert!(summary.sum >= summary.count as i64 * 1_000);
                    }
                    queries_run.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Writers: each streams its own deterministic trade sequence.
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let engine = Arc::clone(&engine);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(w as u64);
                for _ in 0..TRADES_PER_WRITER {
                    let (paths, value) = trade(&mut rng);
                    engine.insert_raw(&paths, value).expect("insert");
                }
            });
        }
    });
    engine.flush();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader");
    }
    assert!(queries_run.load(Ordering::Relaxed) > 0, "readers never ran");

    // Sequential replay of the same trades into a plain DcTree.
    let mut replay = DcTree::new(ticker_schema(), DcTreeConfig::default());
    for w in 0..WRITERS {
        let mut rng = StdRng::seed_from_u64(w as u64);
        for _ in 0..TRADES_PER_WRITER {
            let (paths, value) = trade(&mut rng);
            replay.insert_raw(&paths, value).expect("replay insert");
        }
    }

    // Final-count equality — and, since the record multiset is identical,
    // every aggregate agrees too.
    assert_eq!(engine.len(), (WRITERS * TRADES_PER_WRITER) as u64);
    assert_eq!(engine.len(), replay.len());
    assert_eq!(engine.total_summary(), replay.total_summary());
    let q = Mds::all(&replay.schema().clone());
    assert_eq!(
        engine.range_query(&q, AggregateOp::Sum).unwrap(),
        replay.range_query(&q, AggregateOp::Sum).unwrap()
    );
    // (Finer-grained cross-checks by ValueId would be unsound here: the
    // concurrent writers interleave at the catalog, so intern order — and
    // therefore IDs — can differ from the sequential replay's. The
    // differential tests in dc-serve cover value-level equality.)
    for shard in 0..engine.num_shards() {
        engine
            .shard_snapshot(shard)
            .check_invariants()
            .expect("shard invariants");
    }
    engine.shutdown();
}

/// The same race with the aggregate cache in the line of fire and deletes
/// in the stream, under both sharding policies: readers hammer a handful of
/// sector roll-ups (so the cache serves repeats) while writers insert and
/// then deleters remove a deterministic subset; the end state must match a
/// sequential replay, per sector, with every value dynamically interned
/// during the run.
#[test]
fn cached_rollups_race_writers_and_deleters_then_agree() {
    const WRITERS: usize = 3;
    const TRADES_PER_WRITER: usize = 1_200;

    for policy in [
        PartitionPolicy::Hash,
        // Route by Instrument.Sector (level 1 of dimension 0).
        PartitionPolicy::ByDimension {
            dim: DimensionId(0),
            level: 1,
        },
    ] {
        let engine = Arc::new(
            ShardedDcTree::new(
                ticker_schema(),
                EngineConfig {
                    policy,
                    ..EngineConfig::default()
                },
            )
            .unwrap(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let queries_run = Arc::new(AtomicU64::new(0));

        // Readers: the dashboard shape — a small set of per-sector
        // roll-ups, asked over and over, so repeats are served (and kept
        // fresh) by the cache while the write stream mutates the cube.
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let queries_run = Arc::clone(&queries_run);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(2000 + r as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let q = {
                            let schema = engine.schema();
                            let inst = schema.dim(DimensionId(0));
                            let sectors: Vec<_> = inst.values_at(1).collect();
                            let sector = if sectors.is_empty() {
                                inst.all()
                            } else {
                                sectors[rng.gen_range(0usize..sectors.len())]
                            };
                            Mds::new(vec![
                                DimSet::singleton(sector),
                                DimSet::singleton(schema.dim(DimensionId(1)).all()),
                                DimSet::singleton(schema.dim(DimensionId(2)).all()),
                            ])
                        };
                        let summary = engine.range_summary(&q).expect("query");
                        if summary.count > 0 {
                            assert!(summary.min <= summary.max);
                            assert!(summary.sum >= summary.count as i64 * 1_000);
                        }
                        queries_run.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();

        // Phase 1: writers race (dynamic interning — the schema starts
        // with no values at all).
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(w as u64);
                    for _ in 0..TRADES_PER_WRITER {
                        let (paths, value) = trade(&mut rng);
                        engine.insert_raw(&paths, value).expect("insert");
                    }
                });
            }
        });
        engine.flush();

        // Phase 2: deleters race the readers, removing every 3rd trade of
        // each writer's stream (all present after the flush above).
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(w as u64);
                    for i in 0..TRADES_PER_WRITER {
                        let (paths, value) = trade(&mut rng);
                        if i % 3 == 0 {
                            engine.delete_raw(&paths, value).expect("delete");
                        }
                    }
                });
            }
        });
        engine.flush();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader");
        }
        assert!(queries_run.load(Ordering::Relaxed) > 0, "readers never ran");

        // Sequential replay of the same stream.
        let mut replay = DcTree::new(ticker_schema(), DcTreeConfig::default());
        for w in 0..WRITERS {
            let mut rng = StdRng::seed_from_u64(w as u64);
            for _ in 0..TRADES_PER_WRITER {
                let (paths, value) = trade(&mut rng);
                replay.insert_raw(&paths, value).expect("replay insert");
            }
        }
        for w in 0..WRITERS {
            let mut rng = StdRng::seed_from_u64(w as u64);
            for i in 0..TRADES_PER_WRITER {
                let (paths, value) = trade(&mut rng);
                if i % 3 == 0 {
                    let record = replay
                        .schema()
                        .clone()
                        .intern_record(&paths, value)
                        .unwrap();
                    assert!(replay.delete(&record).expect("replay delete"));
                }
            }
        }

        assert_eq!(engine.len(), replay.len(), "under {policy:?}");
        assert_eq!(
            engine.total_summary(),
            replay.total_summary(),
            "under {policy:?}"
        );
        // Per-sector equality by *name* (IDs may differ: concurrent writers
        // interleave at the catalog, the replay interns sequentially).
        let engine_schema = engine.schema();
        for sector in SECTORS {
            let per_engine = {
                let v = engine_schema.dim(DimensionId(0)).lookup_path(&[sector]);
                Mds::new(vec![
                    DimSet::singleton(v.expect("sector interned")),
                    DimSet::singleton(engine_schema.dim(DimensionId(1)).all()),
                    DimSet::singleton(engine_schema.dim(DimensionId(2)).all()),
                ])
            };
            let per_replay = {
                let schema = replay.schema();
                let v = schema.dim(DimensionId(0)).lookup_path(&[sector]);
                Mds::new(vec![
                    DimSet::singleton(v.expect("sector interned")),
                    DimSet::singleton(schema.dim(DimensionId(1)).all()),
                    DimSet::singleton(schema.dim(DimensionId(2)).all()),
                ])
            };
            assert_eq!(
                engine.range_summary(&per_engine).unwrap(),
                replay.range_summary(&per_replay).unwrap(),
                "sector {sector} drifted under {policy:?}"
            );
        }
        // The cache must have both served repeats and absorbed deltas.
        let cm = &engine.metrics().cache;
        assert!(cm.hits.load(Ordering::Relaxed) > 0, "no cache hits");
        assert!(
            cm.patches.load(Ordering::Relaxed) + cm.invalidations.load(Ordering::Relaxed) > 0,
            "writes never reached the cache"
        );
        engine.shutdown();
    }
}
