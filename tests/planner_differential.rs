//! Planner differential: every physical backend the cost model can pick —
//! DC-tree descent, WAH bitmap algebra, materialized-view lattice lookup,
//! sequential scan — must return *identical* answers on the same data, and
//! the planner's per-shard choice must match them all. Pinned over a
//! selectivity × group-by-level matrix and, crucially, while concurrent
//! ingest/delete churn is rewriting the shards: the engine publishes each
//! shard's tree + auxiliary engines as one atomic snapshot, so a divergence
//! here means a real consistency bug, not test flakiness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dctree::common::AggregateOp;
use dctree::mds::Mds;
use dctree::plan::Backend;
use dctree::ql::ParsedStatement;
use dctree::query::{QueryShape, RangeQueryGen, ValuePick, ZipfQueryMix};
use dctree::serve::{EngineConfig, PartitionPolicy, PlannerOptions, ShardedDcTree};
use dctree::tpcd::{generate, TpcdConfig, TpcdData};

fn stmt(shape: &QueryShape) -> ParsedStatement {
    ParsedStatement {
        ops: shape.ops.clone(),
        filter: shape.filter.clone(),
        group_by: shape.group_by,
        top: None,
        joins: Vec::new(),
    }
}

fn planner_engine(data: &TpcdData, num_shards: usize) -> ShardedDcTree {
    let engine = ShardedDcTree::new(
        data.schema.clone(),
        EngineConfig {
            num_shards,
            policy: PartitionPolicy::Hash,
            planner: Some(PlannerOptions::default()),
            ..Default::default()
        },
    )
    .unwrap();
    for r in &data.records {
        engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
    }
    engine.flush();
    engine
}

/// Quiescent matrix: scalar and grouped statements over three selectivities
/// and *every* hierarchy level of every dimension. All backends must agree
/// with each other, with the planner's choice, and with the public
/// `execute`/`explain` entry points.
#[test]
fn all_backends_agree_across_selectivity_and_level_matrix() {
    let data = generate(&TpcdConfig::scaled(2500, 31));
    let engine = planner_engine(&data, 2);
    let ops = vec![
        AggregateOp::Sum,
        AggregateOp::Count,
        AggregateOp::Min,
        AggregateOp::Max,
    ];

    let mut chosen_backends = std::collections::BTreeSet::new();
    for (sel, qseed) in [(0.02, 1u64), (0.1, 2), (0.5, 3)] {
        let mut gen = RangeQueryGen::new(sel, ValuePick::Scattered, qseed);
        // Scalar probes at this selectivity.
        for _ in 0..8 {
            let shape = QueryShape {
                filter: gen.generate(&data.schema),
                group_by: None,
                ops: ops.clone(),
            };
            check_all_agree(&engine, &shape, sel, &mut chosen_backends);
        }
        // Grouped probes: every level of every dimension, both under the
        // selective filter (descent/bitmap territory) and unfiltered (the
        // whole-cube roll-ups the view lattice answers from its cells).
        for d in 0..data.schema.num_dims() {
            let dim = dctree::common::DimensionId(d as u16);
            for level in 0..data.schema.dim(dim).top_level() {
                for filter in [gen.generate(&data.schema), Mds::all(&data.schema)] {
                    let shape = QueryShape {
                        filter,
                        group_by: Some((dim, level)),
                        ops: ops.clone(),
                    };
                    check_all_agree(&engine, &shape, sel, &mut chosen_backends);
                }
            }
        }
    }
    // The cost model must actually discriminate: a matrix this wide has to
    // exercise more than one physical backend.
    assert!(
        chosen_backends.len() >= 2,
        "planner picked only {chosen_backends:?} across the whole matrix"
    );
    engine.shutdown();
}

fn check_all_agree(
    engine: &ShardedDcTree,
    shape: &QueryShape,
    sel: f64,
    chosen: &mut std::collections::BTreeSet<&'static str>,
) {
    let s = stmt(shape);
    let cmp = engine.compare_backends(&s).unwrap();
    assert!(
        cmp.outputs.len() >= 2,
        "expected several backends, got {:?}",
        cmp.outputs.iter().map(|(b, _)| *b).collect::<Vec<_>>()
    );
    let (first_backend, reference) = &cmp.outputs[0];
    for (backend, out) in &cmp.outputs[1..] {
        assert_eq!(
            out, reference,
            "{backend} vs {first_backend} diverged at sel {sel} on {shape:?}"
        );
    }
    assert_eq!(
        &cmp.chosen, reference,
        "planner choice diverged at sel {sel} on {shape:?}"
    );
    // The serving entry points run on the same published snapshots, so on a
    // quiescent engine they must agree too.
    let executed = engine.execute(&s).unwrap();
    assert_eq!(&executed, reference, "execute() diverged at sel {sel}");
    let (explained, explain) = engine.explain(&s).unwrap();
    assert_eq!(&explained, reference, "explain() diverged at sel {sel}");
    chosen.insert(explain.backend.name());
    for (b, _) in &cmp.outputs {
        // Forcing each backend through the public API must agree as well.
        let (forced, _) = engine.execute_forced(&s, *b).unwrap();
        assert_eq!(&forced, reference, "forced {b} diverged at sel {sel}");
    }
    let _ = Backend::ALL; // matrix covers every declared backend via ALL order
}

/// Mid-churn differential: writer threads continuously insert and delete
/// while queries compare every backend. Answers may drift between *calls*
/// (snapshots advance) but within one comparison every backend sees the
/// same atomically-published state, so they must agree exactly.
#[test]
fn backends_agree_under_concurrent_churn() {
    let data = Arc::new(generate(&TpcdConfig::scaled(2000, 32)));
    let engine = Arc::new(planner_engine(&data, 2));
    let stop = Arc::new(AtomicBool::new(false));

    let mut churners = Vec::new();
    for t in 0..2u64 {
        let engine = Arc::clone(&engine);
        let data = Arc::clone(&data);
        let stop = Arc::clone(&stop);
        churners.push(std::thread::spawn(move || {
            let mut i = (t as usize) * 7919;
            while !stop.load(Ordering::Relaxed) {
                let r = &data.records[i % data.records.len()];
                if i.is_multiple_of(3) {
                    engine.delete_raw(&data.paths_for(r), r.measure).unwrap();
                } else {
                    engine.insert_raw(&data.paths_for(r), r.measure).unwrap();
                }
                i += 1;
                if i.is_multiple_of(64) {
                    engine.flush();
                }
            }
        }));
    }

    let mut gen = RangeQueryGen::new(0.15, ValuePick::Scattered, 33);
    let mut mix = ZipfQueryMix::generate_shapes(&data.schema, 48, 0.8, &mut gen, 34);
    for _ in 0..120 {
        let shape = mix.next_shape().clone();
        let s = stmt(&shape);
        let cmp = engine.compare_backends(&s).unwrap();
        let (first_backend, reference) = &cmp.outputs[0];
        for (backend, out) in &cmp.outputs[1..] {
            assert_eq!(
                out, reference,
                "{backend} vs {first_backend} diverged mid-churn on {shape:?}"
            );
        }
        assert_eq!(&cmp.chosen, reference, "planner diverged mid-churn");
    }

    stop.store(true, Ordering::Relaxed);
    for c in churners {
        c.join().unwrap();
    }
    engine.flush();
    // Quiescent again: the serving path agrees with a final comparison.
    let shape = mix.next_shape().clone();
    let s = stmt(&shape);
    let cmp = engine.compare_backends(&s).unwrap();
    assert_eq!(&engine.execute(&s).unwrap(), &cmp.chosen);
    engine.shutdown();
}
