//! Concurrency smoke tests for the always-online scenario: writers stream
//! records in while readers run analytical queries — the deployment the
//! paper designs the DC-tree for (no nightly batch window).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dctree::tpcd::{generate, TpcdConfig};
use dctree::{AggregateOp, ConcurrentDcTree, DcTree, DcTreeConfig, Mds};

#[test]
fn concurrent_reads_and_writes_never_observe_torn_state() {
    let data = generate(&TpcdConfig::scaled(2000, 1));
    let tree = Arc::new(ConcurrentDcTree::new(DcTree::new(
        data.schema.clone(),
        DcTreeConfig {
            dir_capacity: 8,
            data_capacity: 16,
            ..DcTreeConfig::default()
        },
    )));
    let stop = Arc::new(AtomicBool::new(false));
    let schema = Arc::new(data.schema.clone());

    let writer = {
        let tree = Arc::clone(&tree);
        let records = data.records.clone();
        std::thread::spawn(move || {
            for r in records {
                tree.insert(r).unwrap();
            }
        })
    };

    // The collect is the point: every reader must be spawned *before* the
    // writer is joined, or they would not run concurrently with ingest.
    #[allow(clippy::needless_collect)]
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let schema = Arc::clone(&schema);
            std::thread::spawn(move || {
                let q = Mds::all(&schema);
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let summary = tree.range_summary(&q).unwrap();
                    // COUNT over everything must equal the record count the
                    // same snapshot reports — a torn read would break this.
                    let len = tree.len();
                    assert!(
                        summary.count <= len || summary.count >= len.saturating_sub(1),
                        "count {} vs len {len}",
                        summary.count
                    );
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    writer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_reads > 0, "readers must have made progress");

    // Final state is complete and consistent.
    assert_eq!(tree.len() as usize, data.records.len());
    tree.with_read(|t| t.check_invariants()).unwrap();
    let q = Mds::all(&data.schema);
    assert_eq!(
        tree.range_query(&q, AggregateOp::Count).unwrap(),
        Some(data.records.len() as f64)
    );
}

#[test]
fn crossbeam_scoped_mixed_workload() {
    let data = generate(&TpcdConfig::scaled(1200, 2));
    let tree = ConcurrentDcTree::new(DcTree::new(data.schema.clone(), DcTreeConfig::default()));
    let (first_half, second_half) = data.records.split_at(data.records.len() / 2);
    for r in first_half {
        tree.insert(r.clone()).unwrap();
    }

    crossbeam::scope(|s| {
        // One writer inserts the second half…
        s.spawn(|_| {
            for r in second_half {
                tree.insert(r.clone()).unwrap();
            }
        });
        // …one writer deletes some of the first half…
        s.spawn(|_| {
            for r in first_half.iter().step_by(5) {
                assert!(tree.delete(r).unwrap());
            }
        });
        // …while readers hammer queries.
        for _ in 0..2 {
            s.spawn(|_| {
                let q = Mds::all(&data.schema);
                for _ in 0..200 {
                    let _ = tree.range_summary(&q).unwrap();
                }
            });
        }
    })
    .unwrap();

    let expected = first_half.len() - first_half.iter().step_by(5).count() + second_half.len();
    assert_eq!(tree.len() as usize, expected);
    tree.with_read(|t| t.check_invariants()).unwrap();
}
